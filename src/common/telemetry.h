#ifndef FACTION_COMMON_TELEMETRY_H_
#define FACTION_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/alloc_audit.h"
#include "common/timer.h"

namespace faction {

/// Process-wide run metrics: monotonic counters, gauges, and fixed-bucket
/// log-spaced histograms (see DESIGN.md §11).
///
/// The registry is disabled by default and every instrumentation site goes
/// through the inline helpers below, whose disabled path is a single atomic
/// pointer load plus a branch — no allocation, no lock. Instrumentation
/// must never change results: sites only *observe* (the acquisition loop,
/// training, density refits, drift detection, evaluation), and counters are
/// only bumped from serial orchestration code, so their values are
/// identical for any worker-thread count (the determinism contract the
/// parallel layer already guarantees for numeric results).
///
/// Counter names are dot-separated lowercase paths ("evaluator.tasks",
/// "faction.density_full_refit"). Histograms observing wall-clock durations
/// use a ".seconds" suffix; their *values* are inherently non-deterministic
/// while their counts remain deterministic.
class Telemetry {
 public:
  /// Histogram bucketing: kNumBuckets log-spaced buckets with upper bounds
  /// kFirstBound * 2^i, plus an underflow bucket (index 0, values below
  /// kFirstBound including zero/negative) and an overflow bucket (last
  /// index). Fixed at compile time so snapshots are comparable across runs.
  static constexpr double kFirstBound = 1e-9;
  static constexpr int kNumBuckets = 64;

  struct HistogramSnapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0
    double max = 0.0;  ///< meaningful only when count > 0
    /// kNumBuckets + 2 slots: [underflow, bucket 0..kNumBuckets-1, overflow].
    std::vector<std::uint64_t> buckets;
  };

  /// Bucket slot (0..kNumBuckets+1) a value falls into.
  static int BucketIndex(double value);

  /// The enabled registry, or nullptr when telemetry is off. The fast path
  /// for every instrumentation helper.
  static Telemetry* Get() {
    return instance_.load(std::memory_order_acquire);
  }

  /// Turns the process-wide registry on (idempotent) and returns it. State
  /// accumulated before a Disable() is retained; call Reset() for a clean
  /// slate.
  static Telemetry* Enable();

  /// Turns instrumentation off. The registry's contents remain readable
  /// through the pointer returned by the preceding Enable().
  static void Disable();

  /// Adds `delta` to the named monotonic counter (created at zero).
  void AddCounter(const std::string& name, std::uint64_t delta = 1);

  /// Sets the named gauge to `value` (last-write-wins).
  void SetGauge(const std::string& name, double value);

  /// Records `value` into the named histogram.
  void Observe(const std::string& name, double value);

  /// Current value of a counter; 0 when it was never touched.
  std::uint64_t CounterValue(const std::string& name) const;

  /// Current value of a gauge; 0.0 when it was never set.
  double GaugeValue(const std::string& name) const;

  /// Snapshot of a histogram; zero-count snapshot when it was never
  /// observed.
  HistogramSnapshot HistogramFor(const std::string& name) const;

  /// All counters, sorted by name (deterministic iteration order).
  std::vector<std::pair<std::string, std::uint64_t>> Counters() const;

  /// All gauges, sorted by name.
  std::vector<std::pair<std::string, double>> Gauges() const;

  /// All histogram names, sorted.
  std::vector<std::string> HistogramNames() const;

  /// Clears every counter, gauge, and histogram.
  void Reset();

  /// Renders a markdown section (counters table, gauge table, histogram
  /// count/mean/min/max table). Sections with no entries are omitted.
  void WriteMarkdown(std::ostream& os) const;

 private:
  struct Histogram {
    HistogramSnapshot snap;
  };

  static std::atomic<Telemetry*> instance_;

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Instrumentation helpers: no-ops (one pointer load) when telemetry is
/// disabled. Names should be string literals so the disabled path performs
/// no allocation. The enabled path builds std::string keys, which is
/// observation overhead rather than pipeline work — it runs under a
/// ScopedAllocationAllow so a steady-state allocation ban (alloc_audit.h)
/// measures the pipeline, not the instrumentation of it.
inline void TelemetryCount(const char* name, std::uint64_t delta = 1) {
  if (Telemetry* t = Telemetry::Get()) {
    ScopedAllocationAllow allow_instrumentation;
    t->AddCounter(name, delta);
  }
}

inline void TelemetryGauge(const char* name, double value) {
  if (Telemetry* t = Telemetry::Get()) {
    ScopedAllocationAllow allow_instrumentation;
    t->SetGauge(name, value);
  }
}

inline void TelemetryObserve(const char* name, double value) {
  if (Telemetry* t = Telemetry::Get()) {
    ScopedAllocationAllow allow_instrumentation;
    t->Observe(name, value);
  }
}

/// Reads a counter through the enabled registry; 0 when telemetry is off.
/// Used by trace writers to fold counter deltas into per-task records.
inline std::uint64_t TelemetryCounterValue(const char* name) {
  if (Telemetry* t = Telemetry::Get()) {
    ScopedAllocationAllow allow_instrumentation;
    return t->CounterValue(name);
  }
  return 0;
}

/// RAII wall-clock timer recording elapsed seconds into a histogram on
/// destruction. When telemetry is disabled at construction the destructor
/// does nothing (and the clock is never read).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name)
      : name_(name), active_(Telemetry::Get() != nullptr) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (active_) TelemetryObserve(name_, timer_.ElapsedSeconds());
  }

  /// Seconds since construction (0.0 when telemetry was disabled then).
  double ElapsedSeconds() const {
    return active_ ? timer_.ElapsedSeconds() : 0.0;
  }

 private:
  const char* name_;
  bool active_;
  Timer timer_;
};

}  // namespace faction

#endif  // FACTION_COMMON_TELEMETRY_H_
