#ifndef FACTION_COMMON_ALLOC_AUDIT_H_
#define FACTION_COMMON_ALLOC_AUDIT_H_

#include <cstdint>

// Heap-allocation audit layer (DESIGN.md §13).
//
// Built with -DFACTION_ALLOC_AUDIT=ON, src/common/alloc_audit.cc replaces
// the global operator new/delete family (all sized/aligned/nothrow
// variants) with thin wrappers that keep per-thread counters and honour
// the scoped ban below. Without the option every entry point here is a
// no-op returning zeros, so library code can deploy bans unconditionally.
//
// The counters are thread-local: a snapshot diff brackets exactly the work
// the calling thread did, unperturbed by pool workers. ParallelFor bodies
// run on other threads, so a steady-state gate asserts on the caller's
// counters plus a ban that each worker inherits is *not* provided — hot
// kernels are instead kept allocation-free by construction (thread-local
// pack scratch, caller-owned arenas) and linted via `no-alloc-in-hot`.
//
// Interposition relies on the audit TU being linked into the binary: any
// reference to a symbol below (e.g. the trace writer's AllocAuditMode()
// call or a test's ScopedAllocationBan) pulls it from the static archive.

namespace faction {

/// Per-thread allocation counters. `allocs`/`bytes` accumulate operator
/// new calls and requested sizes, `frees` counts operator delete calls,
/// `peak_bytes` is the largest single request seen on this thread.
struct AllocationStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
  std::uint64_t peak_bytes = 0;
};

/// True when the binary interposes the allocator (FACTION_ALLOC_AUDIT=ON).
constexpr bool AllocAuditEnabled() {
#if defined(FACTION_ALLOC_AUDIT)
  return true;
#else
  return false;
#endif
}

/// "on" / "off"; stamped into the trace run_start record (schema v3) so a
/// replayed trace records whether its run was allocation-audited.
const char* AllocAuditMode();

/// Snapshot of the calling thread's counters (all zero when audit is off).
AllocationStats ThreadAllocationStats();

/// RAII guard marking a region that must not allocate on this thread.
///
///   kFatal — the first operator new aborts via the FACTION_CHECK failure
///            path, reporting the site label, the requested size, and the
///            return address of the allocating call.
///   kCount — violations are tallied; at scope exit the tallies are
///            published to the telemetry counters
///            `alloc.steady_state_allocs` / `alloc.steady_state_bytes`.
///
/// Bans nest (the innermost site/mode wins; counters are shared), and
/// ScopedAllocationAllow punches an exemption hole for cold or amortized
/// branches inside a banned region. No-op without FACTION_ALLOC_AUDIT.
class ScopedAllocationBan {
 public:
  enum class Mode { kFatal, kCount };

  explicit ScopedAllocationBan(const char* site, Mode mode = Mode::kFatal);
  ~ScopedAllocationBan();

  ScopedAllocationBan(const ScopedAllocationBan&) = delete;
  ScopedAllocationBan& operator=(const ScopedAllocationBan&) = delete;

  /// Allocations observed under a ban since this scope opened (includes
  /// nested scopes on the same thread).
  std::uint64_t violations() const;
  std::uint64_t violation_bytes() const;

 private:
  const char* site_;
  Mode mode_;
  const char* prev_site_;
  Mode prev_mode_;
  std::uint64_t entry_violations_;
  std::uint64_t entry_violation_bytes_;
};

/// RAII exemption: re-permits allocation inside a ScopedAllocationBan for
/// a deliberately amortized branch (arena growth, density refit, error
/// reporting). Nests; no-op without FACTION_ALLOC_AUDIT.
class ScopedAllocationAllow {
 public:
  ScopedAllocationAllow();
  ~ScopedAllocationAllow();

  ScopedAllocationAllow(const ScopedAllocationAllow&) = delete;
  ScopedAllocationAllow& operator=(const ScopedAllocationAllow&) = delete;
};

}  // namespace faction

#endif  // FACTION_COMMON_ALLOC_AUDIT_H_
