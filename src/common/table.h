#ifndef FACTION_COMMON_TABLE_H_
#define FACTION_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace faction {

/// Minimal text-table builder used by the bench harnesses to print the rows
/// the paper reports (Fig. 2 series, Table I, ...). Cells are strings; use
/// FormatCell helpers for numbers. Also exports CSV for downstream plotting.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Writes an aligned, pipe-separated rendering.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas or quotes).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string FormatCell(double value, int decimals = 4);

/// Formats "mean ± std" the way the paper reports repeated runs.
std::string FormatMeanStd(double mean, double std, int decimals = 4);

}  // namespace faction

#endif  // FACTION_COMMON_TABLE_H_
