#include "common/status.h"

namespace faction {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok() && message_.empty()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace faction
