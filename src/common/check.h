#ifndef FACTION_COMMON_CHECK_H_
#define FACTION_COMMON_CHECK_H_

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>

#include "common/logging.h"

// Contracts layer: runtime invariant checks for programmer errors.
//
// FACTION_CHECK*  — always on, abort with a diagnostic. Use at module entry
//                   points and in cold code where the cost is irrelevant.
// FACTION_DCHECK* — compiled out in NDEBUG builds (unless
//                   FACTION_FORCE_DCHECKS is defined, as the sanitizer
//                   presets do). Use on hot paths: inner loops, unchecked
//                   element access, per-sample density evaluation.
//
// These are for invariants that only a bug can violate. Validation of
// user-supplied input belongs in Status/Result returns, not here.

namespace faction {
namespace internal_check {

/// Logs `message` at error severity and aborts.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);

/// Stringifies a checked value for failure messages; resolves to the
/// decimal representation for arithmetic types.
template <typename T>
std::string CheckValue(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

[[noreturn]] void CheckOpFailed(const char* file, int line, const char* expr,
                                const std::string& lhs,
                                const std::string& rhs);

[[noreturn]] void CheckFiniteFailed(const char* file, int line,
                                    const char* expr, double value);

[[noreturn]] void ShapeMismatch(const char* file, int line, const char* expr,
                                std::size_t got_rows, std::size_t got_cols,
                                std::size_t want_rows, std::size_t want_cols);

[[noreturn]] void LengthMismatch(const char* file, int line, const char* expr,
                                 std::size_t got, std::size_t want);

/// Scans `values[0, n)` and aborts (via CheckFiniteFailed with the offending
/// index folded into the message) when any element is NaN or infinite.
/// One call validates a whole buffer, so hot loops need no per-element
/// branch; release-mode codegen of the surrounding loop is unaffected.
void CheckAllFinite(const char* file, int line, const char* expr,
                    const double* values, std::size_t n);

}  // namespace internal_check
}  // namespace faction

/// Aborts with a message when `cond` is false. Used for programmer-error
/// invariants that should never fail in correct code (not for input
/// validation, which returns Status).
#define FACTION_CHECK(cond)                                             \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::faction::internal_check::CheckFailed(__FILE__, __LINE__,        \
                                             "CHECK failed: " #cond);   \
    }                                                                   \
  } while (0)

/// Binary comparison checks; on failure both operand values are printed.
/// Operands are evaluated exactly once. Mixed signed/unsigned comparisons
/// warn under -Werror just like the raw operator would — cast at the call
/// site when the types differ.
#define FACTION_CHECK_OP_(op, a, b)                                        \
  do {                                                                     \
    const auto& faction_check_a_ = (a);                                    \
    const auto& faction_check_b_ = (b);                                    \
    if (!(faction_check_a_ op faction_check_b_)) {                         \
      ::faction::internal_check::CheckOpFailed(                            \
          __FILE__, __LINE__, "CHECK failed: " #a " " #op " " #b,          \
          ::faction::internal_check::CheckValue(faction_check_a_),         \
          ::faction::internal_check::CheckValue(faction_check_b_));        \
    }                                                                      \
  } while (0)

#define FACTION_CHECK_EQ(a, b) FACTION_CHECK_OP_(==, a, b)
#define FACTION_CHECK_NE(a, b) FACTION_CHECK_OP_(!=, a, b)
#define FACTION_CHECK_LT(a, b) FACTION_CHECK_OP_(<, a, b)
#define FACTION_CHECK_LE(a, b) FACTION_CHECK_OP_(<=, a, b)
#define FACTION_CHECK_GT(a, b) FACTION_CHECK_OP_(>, a, b)
#define FACTION_CHECK_GE(a, b) FACTION_CHECK_OP_(>=, a, b)

/// Aborts when `x` is NaN or infinite. Guards the numeric core (densities,
/// losses, query scores) against silently propagating garbage.
#define FACTION_CHECK_FINITE(x)                                           \
  do {                                                                    \
    const double faction_check_v_ = static_cast<double>(x);               \
    if (!::std::isfinite(faction_check_v_)) {                             \
      ::faction::internal_check::CheckFiniteFailed(__FILE__, __LINE__,    \
                                                   #x, faction_check_v_); \
    }                                                                     \
  } while (0)

/// Aborts when any of the n doubles starting at `ptr` is NaN or infinite.
/// Prefer this over FACTION_CHECK_FINITE inside per-element loops: validate
/// the finished buffer once instead of branching on every element.
#define FACTION_CHECK_FINITE_ALL(ptr, n)                                  \
  ::faction::internal_check::CheckAllFinite(__FILE__, __LINE__, #ptr,     \
                                            (ptr),                        \
                                            static_cast<std::size_t>(n))

/// Shape assertions for anything exposing rows()/cols() (Matrix, views).
#define FACTION_CHECK_SHAPE(m, r, c)                                         \
  do {                                                                       \
    const auto& faction_check_m_ = (m);                                      \
    const std::size_t faction_check_r_ = static_cast<std::size_t>(r);        \
    const std::size_t faction_check_c_ = static_cast<std::size_t>(c);        \
    if (faction_check_m_.rows() != faction_check_r_ ||                       \
        faction_check_m_.cols() != faction_check_c_) {                       \
      ::faction::internal_check::ShapeMismatch(                              \
          __FILE__, __LINE__, #m " is " #r "x" #c, faction_check_m_.rows(),  \
          faction_check_m_.cols(), faction_check_r_, faction_check_c_);      \
    }                                                                        \
  } while (0)

/// Asserts that two matrices have identical shape.
#define FACTION_CHECK_SAME_SHAPE(a, b)                                      \
  do {                                                                      \
    const auto& faction_check_sa_ = (a);                                    \
    const auto& faction_check_sb_ = (b);                                    \
    if (faction_check_sa_.rows() != faction_check_sb_.rows() ||             \
        faction_check_sa_.cols() != faction_check_sb_.cols()) {             \
      ::faction::internal_check::ShapeMismatch(                             \
          __FILE__, __LINE__, #a " same shape as " #b,                      \
          faction_check_sa_.rows(), faction_check_sa_.cols(),               \
          faction_check_sb_.rows(), faction_check_sb_.cols());              \
    }                                                                       \
  } while (0)

/// Asserts that a sized container (vector, span) has exactly `n` elements.
#define FACTION_CHECK_LEN(v, n)                                             \
  do {                                                                      \
    const std::size_t faction_check_got_ = (v).size();                      \
    const std::size_t faction_check_want_ = static_cast<std::size_t>(n);    \
    if (faction_check_got_ != faction_check_want_) {                        \
      ::faction::internal_check::LengthMismatch(                            \
          __FILE__, __LINE__, #v " has length " #n, faction_check_got_,     \
          faction_check_want_);                                             \
    }                                                                       \
  } while (0)

// Debug-only variants. Enabled when NDEBUG is off (Debug/sanitizer builds)
// or when FACTION_FORCE_DCHECKS is defined; in Release they compile to a
// dead branch so operands must still compile but cost nothing.
#if !defined(NDEBUG) || defined(FACTION_FORCE_DCHECKS)
#define FACTION_DCHECKS_ENABLED 1
#else
#define FACTION_DCHECKS_ENABLED 0
#endif

#if FACTION_DCHECKS_ENABLED
#define FACTION_DCHECK(cond) FACTION_CHECK(cond)
#define FACTION_DCHECK_EQ(a, b) FACTION_CHECK_EQ(a, b)
#define FACTION_DCHECK_NE(a, b) FACTION_CHECK_NE(a, b)
#define FACTION_DCHECK_LT(a, b) FACTION_CHECK_LT(a, b)
#define FACTION_DCHECK_LE(a, b) FACTION_CHECK_LE(a, b)
#define FACTION_DCHECK_GT(a, b) FACTION_CHECK_GT(a, b)
#define FACTION_DCHECK_GE(a, b) FACTION_CHECK_GE(a, b)
#define FACTION_DCHECK_FINITE(x) FACTION_CHECK_FINITE(x)
#define FACTION_DCHECK_FINITE_ALL(ptr, n) FACTION_CHECK_FINITE_ALL(ptr, n)
#define FACTION_DCHECK_SHAPE(m, r, c) FACTION_CHECK_SHAPE(m, r, c)
#define FACTION_DCHECK_SAME_SHAPE(a, b) FACTION_CHECK_SAME_SHAPE(a, b)
#define FACTION_DCHECK_LEN(v, n) FACTION_CHECK_LEN(v, n)
#else
#define FACTION_DCHECK_DISCARD_(...)         \
  do {                                       \
    if (false) {                             \
      static_cast<void>(__VA_ARGS__);        \
    }                                        \
  } while (0)
#define FACTION_DCHECK(cond) FACTION_DCHECK_DISCARD_(cond)
#define FACTION_DCHECK_EQ(a, b) FACTION_DCHECK_DISCARD_((a) == (b))
#define FACTION_DCHECK_NE(a, b) FACTION_DCHECK_DISCARD_((a) != (b))
#define FACTION_DCHECK_LT(a, b) FACTION_DCHECK_DISCARD_((a) < (b))
#define FACTION_DCHECK_LE(a, b) FACTION_DCHECK_DISCARD_((a) <= (b))
#define FACTION_DCHECK_GT(a, b) FACTION_DCHECK_DISCARD_((a) > (b))
#define FACTION_DCHECK_GE(a, b) FACTION_DCHECK_DISCARD_((a) >= (b))
#define FACTION_DCHECK_FINITE(x) FACTION_DCHECK_DISCARD_(x)
#define FACTION_DCHECK_FINITE_ALL(ptr, n) FACTION_DCHECK_DISCARD_((ptr) + (n))
#define FACTION_DCHECK_SHAPE(m, r, c) \
  FACTION_DCHECK_DISCARD_((m).rows() + (r) + (c))
#define FACTION_DCHECK_SAME_SHAPE(a, b) \
  FACTION_DCHECK_DISCARD_((a).rows() + (b).rows())
#define FACTION_DCHECK_LEN(v, n) FACTION_DCHECK_DISCARD_((v).size() + (n))
#endif  // FACTION_DCHECKS_ENABLED

#endif  // FACTION_COMMON_CHECK_H_
