// Quickstart: run FACTION on a small changing-environments stream and
// print per-task accuracy and fairness.
//
//   $ ./build/examples/quickstart
//
// The flow below is the library's core loop: build (or adapt) a task
// stream, pick a method, run the online protocol, read the metrics.
#include <cstdio>
#include <iostream>

#include "core/presets.h"
#include "data/streams.h"

int main() {
  using namespace faction;

  // 1. A task stream: 12 tasks drawn from 4 shifting environments
  //    (the RCMNIST-style benchmark; see data/streams.h for the others).
  RcmnistConfig stream_config;
  stream_config.scale.samples_per_task = 400;
  stream_config.scale.seed = 1;
  const Result<std::vector<Dataset>> stream =
      MakeRcmnistStream(stream_config);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  // 2. Experiment defaults: budget B, acquisition size A, backbone,
  //    FACTION's lambda/alpha/mu/epsilon. Everything is overridable.
  ExperimentDefaults defaults;
  defaults.budget_per_task = 100;
  defaults.acquisition_batch = 25;

  // 3. Run the full fair active online learning protocol (Algorithm 1).
  const Result<RunResult> run =
      RunMethodOnStream("FACTION", stream.value(), defaults, /*seed=*/7);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // 4. Read the per-task metrics: the model is evaluated on each incoming
  //    task *before* it adapts to it.
  std::cout << "task  env  accuracy  DDP    EOD    MI     queries\n";
  for (const TaskMetrics& m : run.value().per_task) {
    std::printf("%4d  %3d  %.3f     %.3f  %.3f  %.3f  %zu\n",
                m.task_index + 1, m.environment, m.accuracy, m.ddp, m.eod,
                m.mi, m.queries_used);
  }
  const StreamSummary& s = run.value().summary;
  std::printf("\nstream means: acc=%.3f DDP=%.3f EOD=%.3f MI=%.3f (%.1fs)\n",
              s.mean_accuracy, s.mean_ddp, s.mean_eod, s.mean_mi,
              run.value().total_seconds);
  return 0;
}
