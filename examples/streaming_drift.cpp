// Single-sample streaming with drift monitoring: the Sec. IV-D extension
// end-to-end. Samples arrive one at a time (no task batching); FACTION's
// streaming variant decides per arrival whether to buy the label, while a
// density-based drift detector watches for environment changes over
// windows of arrivals and reports when the world shifted.
#include <cstdio>
#include <vector>

#include "core/streaming_faction.h"
#include "data/synthetic.h"
#include "stream/drift.h"

int main() {
  using namespace faction;

  constexpr std::size_t kDim = 8;
  Rng rng(11);
  const auto protos = DrawPrototypes(2, kDim, 1.6, &rng);

  // Two environments: the second is a shifted world the stream cuts over
  // to midway.
  EnvironmentSpec before;
  before.class0_mean = protos[0];
  before.class1_mean = protos[1];
  before.group_offset.assign(kDim, 0.0);
  before.group_offset[0] = 0.9;
  before.noise = 0.7;
  before.bias = 0.65;
  EnvironmentSpec after = before;
  after.shift.assign(kDim, 6.0);

  StreamingFactionConfig config;
  config.model.input_dim = kDim;
  config.model.hidden_dims = {16, 8};
  config.warm_start = 60;
  config.refit_interval = 30;
  config.alpha = 1.5;
  config.seed = 5;
  StreamingFaction streaming(config);

  DriftDetectorConfig dconfig;
  dconfig.threshold = 2.5;
  DriftDetector detector(dconfig);

  constexpr int kTotal = 1200;
  constexpr int kCutover = 600;
  constexpr int kWindow = 50;
  int window_count = 0;
  int window_index = 0;
  int queries_in_window = 0;
  std::printf(
      "arrival  queried(last %d)  mean score stat  drift?\n", kWindow);
  for (int i = 0; i < kTotal; ++i) {
    const EnvironmentSpec& env = i < kCutover ? before : after;
    Example e = SampleFromEnvironment(env, i < kCutover ? 0 : 1, &rng);
    const Result<bool> query = streaming.ShouldQuery(e);
    if (!query.ok()) {
      std::fprintf(stderr, "stream error: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    if (query.value()) {
      ++queries_in_window;
      if (!streaming.ProvideLabel(e).ok()) return 1;
    }
    ++window_count;
    if (window_count == kWindow) {
      // Per-window drift statistic: the *negative query rate*. FACTION
      // queries more when arrivals look unfamiliar (low density), so a
      // spike in queries — a drop of this statistic — signals an
      // environment change.
      const double stat =
          -static_cast<double>(queries_in_window) / kWindow;
      ++window_index;
      // The first windows are dominated by the always-query warm start;
      // feeding them to the detector would inflate its baseline variance.
      const bool drift = window_index <= 3 ? false : detector.Observe(stat);
      std::printf("%7d  %6d            %+.3f            %s\n", i + 1,
                  queries_in_window, stat, drift ? "DRIFT" : "-");
      if (drift) {
        std::printf(
            "         -> environment change detected near arrival %d "
            "(true cutover at %d)\n",
            i + 1, kCutover);
        detector.Reset();
      }
      window_count = 0;
      queries_in_window = 0;
    }
  }
  std::printf(
      "\nqueried %zu of %zu arrivals; the query-rate spike after the\n"
      "cutover is FACTION's epistemic signal reacting to the new "
      "environment.\n",
      streaming.queries_made(), streaming.samples_seen());
  return 0;
}
