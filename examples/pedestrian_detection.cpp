// Pedestrian detection with shifting camera conditions — the paper's
// motivating example (Sec. I). A detector consumes feature vectors
// extracted from camera crops; lighting/scene conditions change across the
// day (morning / noon / dusk / night), and the demographic mix (age group,
// the sensitive attribute) varies with location and hour. Labels (is this
// a pedestrian crossing event?) are expensive, so only a small budget per
// batch can be annotated.
//
// This example highlights environment *adaptation*: it prints the accuracy
// drop each method suffers on the first batch after a condition change and
// how quickly it recovers, plus the fairness metrics across age groups.
#include <cstdio>
#include <iostream>

#include "core/presets.h"
#include "data/synthetic.h"

int main() {
  using namespace faction;

  constexpr std::size_t kDim = 14;
  Rng rng(7);

  const auto protos = DrawPrototypes(2, kDim, 1.8, &rng);
  std::vector<double> age_offset(kDim, 0.0);
  age_offset[1] = 0.8;   // gait/size cues correlate with age group
  age_offset[5] = -0.6;

  // Lighting environments rotate the feature space (sensor response) and
  // shift it (exposure), a covariate shift the detector must absorb.
  const char* conditions[] = {"morning", "noon", "dusk", "night"};
  const auto shifts = DrawPrototypes(4, kDim, 1.4, &rng);
  std::vector<EnvironmentSpec> envs;
  std::vector<TaskPlan> plan;
  for (int e = 0; e < 4; ++e) {
    EnvironmentSpec env;
    env.class0_mean = protos[0];
    env.class1_mean = protos[1];
    env.group_offset = age_offset;
    env.noise = 0.75;
    env.bias = 0.6;  // children under-represented in historical labels
    env.rotation = PairwiseRotation(kDim, 12.0 * e);
    env.shift = shifts[e];
    for (int b = 0; b < 3; ++b) plan.push_back(TaskPlan{e, 450});
    envs.push_back(std::move(env));
  }
  const Result<std::vector<Dataset>> stream =
      GenerateStream(envs, plan, &rng);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  ExperimentDefaults defaults;
  defaults.budget_per_task = 120;
  defaults.acquisition_batch = 30;

  std::cout << "Pedestrian detection: 4 lighting conditions x 3 batches, "
               "age group as the sensitive attribute\n\n";
  for (const char* method : {"FACTION", "QuFUR", "Entropy-AL"}) {
    const Result<RunResult> run =
        RunMethodOnStream(method, stream.value(), defaults, 31);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", method,
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", method);
    std::printf("  condition  on-shift acc  recovered acc  DDP (mean)\n");
    for (int e = 0; e < 4; ++e) {
      const TaskMetrics& first = run.value().per_task[e * 3];
      const TaskMetrics& last = run.value().per_task[e * 3 + 2];
      const double mean_ddp = (run.value().per_task[e * 3].ddp +
                               run.value().per_task[e * 3 + 1].ddp +
                               run.value().per_task[e * 3 + 2].ddp) /
                              3.0;
      std::printf("  %-9s  %.3f         %.3f          %.3f\n",
                  conditions[e], first.accuracy, last.accuracy, mean_ddp);
    }
    std::printf("  stream means: acc=%.3f DDP=%.3f EOD=%.3f\n\n",
                run.value().summary.mean_accuracy,
                run.value().summary.mean_ddp,
                run.value().summary.mean_eod);
  }
  std::cout
      << "\"on-shift acc\" is measured on the first batch after a lighting\n"
         "change, before the learner adapts; \"recovered acc\" after two\n"
         "budgeted annotation rounds in that condition. FACTION's density\n"
         "scoring targets OOD samples, so it recovers while also keeping\n"
         "DDP low across age groups.\n";
  return 0;
}
