// Loan approval under economic drift: a domain-specific scenario built
// directly from the library's environment primitives rather than a
// packaged benchmark stream.
//
// A lender screens loan applications arriving quarterly. The sensitive
// attribute is applicant age group (young = +1 / old = -1); the label is
// repayment. Economic conditions drift across quarters (boom, cooling,
// recession, recovery), shifting the applicant feature distribution, and
// the historical data is biased: young applicants are over-represented
// among approved/repaid records (Sec. IV-B's loan example).
//
// The example contrasts FACTION with Random selection and with DDU
// (epistemic-only), showing the fairness gap on each quarter.
#include <cstdio>
#include <iostream>

#include "core/presets.h"
#include "data/synthetic.h"

int main() {
  using namespace faction;

  constexpr std::size_t kDim = 10;
  Rng rng(2024);

  // Applicant feature prototypes: repayers vs defaulters.
  const auto protos = DrawPrototypes(2, kDim, 1.5, &rng);
  // Age displaces income/credit-history style features: the sensitive
  // attribute is partially inferable from the application.
  std::vector<double> age_offset(kDim, 0.0);
  age_offset[0] = 0.9;
  age_offset[3] = -0.7;

  // Four macro-economic environments; each shifts the feature space and
  // modulates the repayment base rate.
  struct Quarter {
    const char* name;
    double shift_scale;
    double repay_rate;
  };
  const Quarter quarters[] = {{"boom", 0.0, 0.62},
                              {"cooling", 0.6, 0.52},
                              {"recession", 1.2, 0.40},
                              {"recovery", 0.7, 0.55}};
  const auto drift = DrawPrototypes(1, kDim, 1.0, &rng)[0];

  std::vector<EnvironmentSpec> envs;
  std::vector<TaskPlan> plan;
  for (int q = 0; q < 4; ++q) {
    EnvironmentSpec env;
    env.class0_mean = protos[0];
    env.class1_mean = protos[1];
    env.group_offset = age_offset;
    env.noise = 0.8;
    env.bias = 0.62;  // young applicants over-represented among repaid
    env.positive_fraction = quarters[q].repay_rate;
    env.shift.assign(kDim, 0.0);
    for (std::size_t j = 0; j < kDim; ++j) {
      env.shift[j] = quarters[q].shift_scale * drift[j];
    }
    // Three monthly batches per quarter.
    for (int month = 0; month < 3; ++month) {
      plan.push_back(TaskPlan{q, 500});
    }
    envs.push_back(std::move(env));
  }
  const Result<std::vector<Dataset>> stream =
      GenerateStream(envs, plan, &rng);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  ExperimentDefaults defaults;
  defaults.budget_per_task = 120;
  defaults.acquisition_batch = 30;

  std::cout << "Loan approval stream: 4 quarters x 3 monthly batches, "
               "age as the sensitive attribute\n\n";
  std::cout << "method     quarter  accuracy  DDP    EOD\n";
  for (const char* method : {"FACTION", "DDU", "Random"}) {
    const Result<RunResult> run =
        RunMethodOnStream(method, stream.value(), defaults, 99);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", method,
                   run.status().ToString().c_str());
      return 1;
    }
    // Aggregate the three monthly batches of each quarter.
    for (int q = 0; q < 4; ++q) {
      double acc = 0.0, ddp = 0.0, eod = 0.0;
      for (int month = 0; month < 3; ++month) {
        const TaskMetrics& m = run.value().per_task[q * 3 + month];
        acc += m.accuracy / 3.0;
        ddp += m.ddp / 3.0;
        eod += m.eod / 3.0;
      }
      std::printf("%-10s %-8s %.3f     %.3f  %.3f\n", method,
                  quarters[q].name, acc, ddp, eod);
    }
    std::printf("\n");
  }
  std::cout << "FACTION should hold DDP/EOD well below DDU and Random on\n"
               "every quarter while staying close in accuracy.\n";
  return 0;
}
