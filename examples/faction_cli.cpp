// faction_cli — run any method on any benchmark stream from the shell.
//
//   $ ./build/examples/faction_cli --dataset nysf --method FACTION
//         --budget 200 --acquisition 50 --samples 600 --seed 42 [--csv]
//         [--scenario "rcmnist;drift=recurring:2"] [--trace run.jsonl]
//         [--telemetry]
//
// Prints the per-task metric table (and optionally CSV for plotting).
// This is the "downstream user" entry point: every knob of the experiment
// defaults is reachable without writing C++.
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/table.h"
#include "common/telemetry.h"
#include "core/presets.h"
#include "data/scenario.h"
#include "data/streams.h"
#include "stream/trace.h"

namespace {

using namespace faction;

struct CliOptions {
  std::string dataset = "nysf";
  /// When non-empty, a scenario DSL spec (data/scenario.h) that builds the
  /// stream instead of --dataset, with full provenance stamped into the
  /// trace's run_start record.
  std::string scenario;
  std::string method = "FACTION";
  std::size_t budget = 200;
  std::size_t acquisition = 50;
  std::size_t samples = 600;
  std::uint64_t seed = 42;
  double mu = 0.6;
  double lambda = 0.5;
  double alpha = 3.0;
  /// Density forgetting (DESIGN.md §15): sliding window over the GDA
  /// estimator (0 = off) and per-fold exponential decay (1 = off).
  std::size_t density_window = 0;
  double density_decay = 1.0;
  bool csv = false;
  bool help = false;
  /// When non-empty, write a JSONL event trace (stream/trace.h) here.
  /// Implies --telemetry so the counter-derived trace fields populate.
  std::string trace_path;
  /// Enable the process-wide metrics registry and print it after the run.
  bool telemetry = false;
};

void PrintUsage() {
  std::printf(
      "usage: faction_cli [options]\n"
      "  --dataset <name>      rcmnist|celeba|fairface|ffhq|nysf "
      "(default nysf)\n"
      "  --scenario <spec>     scenario DSL spec overriding --dataset, e.g.\n"
      "                        \"rcmnist;drift=recurring:2;order="
      "adversarial\"\n"
      "                        (see DESIGN.md §16 for the grammar)\n"
      "  --method <name>       FACTION|FAL|FAL-CUR|Decoupled|QuFUR|DDU|\n"
      "                        Entropy-AL|Random|Bandit|Disentangled, or an\n"
      "                        ablation variant (default FACTION)\n"
      "  --budget <B>          per-task label budget (default 200)\n"
      "  --acquisition <A>     acquisition batch size (default 50)\n"
      "  --samples <n>         samples per task (default 600)\n"
      "  --seed <s>            run seed (default 42)\n"
      "  --mu <v>              fairness regularizer weight (default 0.6)\n"
      "  --lambda <v>          Eq. 6 trade-off (default 0.5)\n"
      "  --alpha <v>           query-rate multiplier (default 3.0)\n"
      "  --density-window <W>  slide the density estimator over the last W\n"
      "                        labels (rank-1 downdates; default 0 = off)\n"
      "  --density-decay <g>   per-label exponential density decay in\n"
      "                        (0, 1] (default 1 = off)\n"
      "  --csv                 emit CSV instead of an aligned table\n"
      "  --trace <path>        write a JSONL event trace of the run\n"
      "                        (one record per task; implies --telemetry)\n"
      "  --telemetry           collect and print run telemetry counters\n");
}

/// Strict strtod wrapper: the whole token must parse, to a finite value.
/// On failure prints the offending flag and token and returns false.
bool ParseDoubleFlag(const char* flag, const char* token, double* out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token, &end);
  if (end == token || *end != '\0') {
    std::fprintf(stderr, "%s: not a number: '%s'\n", flag, token);
    return false;
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    std::fprintf(stderr, "%s: out of range: '%s'\n", flag, token);
    return false;
  }
  *out = value;
  return true;
}

/// Strict strtoull wrapper: digits only (no sign, no trailing junk), no
/// overflow. strtoull on its own accepts "-1" by wrapping it to 2^64-1 and
/// silently stops at the first non-digit, so "200x" would read as 200.
bool ParseUintFlag(const char* flag, const char* token, std::uint64_t* out) {
  if (token[0] == '\0' || token[0] == '+' || token[0] == '-') {
    std::fprintf(stderr, "%s: not a non-negative integer: '%s'\n", flag,
                 token);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token, &end, 10);
  if (end == token || *end != '\0') {
    std::fprintf(stderr, "%s: not a non-negative integer: '%s'\n", flag,
                 token);
    return false;
  }
  if (errno == ERANGE) {
    std::fprintf(stderr, "%s: out of range: '%s'\n", flag, token);
    return false;
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

bool ParseSizeFlag(const char* flag, const char* token, std::size_t* out) {
  std::uint64_t value = 0;
  if (!ParseUintFlag(flag, token, &value)) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      options->help = true;
      return true;
    }
    if (arg == "--csv") {
      options->csv = true;
    } else if (arg == "--telemetry") {
      options->telemetry = true;
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) return false;
      options->trace_path = v;
      options->telemetry = true;
    } else if (arg == "--dataset") {
      const char* v = next("--dataset");
      if (v == nullptr) return false;
      options->dataset = v;
    } else if (arg == "--scenario") {
      const char* v = next("--scenario");
      if (v == nullptr) return false;
      options->scenario = v;
    } else if (arg == "--method") {
      const char* v = next("--method");
      if (v == nullptr) return false;
      options->method = v;
    } else if (arg == "--budget") {
      const char* v = next("--budget");
      if (v == nullptr || !ParseSizeFlag("--budget", v, &options->budget)) {
        return false;
      }
    } else if (arg == "--acquisition") {
      const char* v = next("--acquisition");
      if (v == nullptr ||
          !ParseSizeFlag("--acquisition", v, &options->acquisition)) {
        return false;
      }
    } else if (arg == "--samples") {
      const char* v = next("--samples");
      if (v == nullptr || !ParseSizeFlag("--samples", v, &options->samples)) {
        return false;
      }
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr || !ParseUintFlag("--seed", v, &options->seed)) {
        return false;
      }
    } else if (arg == "--mu") {
      const char* v = next("--mu");
      if (v == nullptr || !ParseDoubleFlag("--mu", v, &options->mu)) {
        return false;
      }
    } else if (arg == "--lambda") {
      const char* v = next("--lambda");
      if (v == nullptr || !ParseDoubleFlag("--lambda", v, &options->lambda)) {
        return false;
      }
    } else if (arg == "--alpha") {
      const char* v = next("--alpha");
      if (v == nullptr || !ParseDoubleFlag("--alpha", v, &options->alpha)) {
        return false;
      }
    } else if (arg == "--density-window") {
      const char* v = next("--density-window");
      if (v == nullptr ||
          !ParseSizeFlag("--density-window", v, &options->density_window)) {
        return false;
      }
    } else if (arg == "--density-decay") {
      const char* v = next("--density-decay");
      if (v == nullptr ||
          !ParseDoubleFlag("--density-decay", v, &options->density_decay)) {
        return false;
      }
      if (!(options->density_decay > 0.0 &&
            options->density_decay <= 1.0)) {
        std::fprintf(stderr, "--density-decay must be in (0, 1]\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// "n/a" for metrics the task could not define (e.g. a single-group task).
std::string MetricOrNa(double value, bool defined, int decimals) {
  if (!defined) return "n/a";
  return FormatCell(value, decimals);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.help) {
    PrintUsage();
    return 0;
  }

  if (options.telemetry) Telemetry::Enable();
  std::unique_ptr<TraceWriter> trace;
  if (!options.trace_path.empty()) {
    Result<std::unique_ptr<TraceWriter>> opened =
        TraceWriter::Create(options.trace_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "trace: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    trace = std::move(opened).value();
  }

  StreamScale scale;
  scale.samples_per_task = options.samples;
  scale.seed = options.seed + 1000;

  std::string scenario_spec = "none";
  Result<std::vector<Dataset>> stream = Status::Internal("unbuilt");
  if (!options.scenario.empty()) {
    const Result<ScenarioConfig> parsed = ParseScenario(options.scenario);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--scenario: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    scenario_spec = CanonicalScenarioSpec(parsed.value());
    stream = MakeScenarioStream(parsed.value(), scale);
  } else {
    stream = MakePaperStream(options.dataset, scale);
  }
  if (!stream.ok()) {
    std::fprintf(stderr, "stream: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  ExperimentDefaults defaults;
  defaults.budget_per_task = options.budget;
  defaults.acquisition_batch = options.acquisition;
  defaults.mu = options.mu;
  defaults.lambda = options.lambda;
  defaults.alpha = options.alpha;
  defaults.density_window = options.density_window;
  defaults.density_decay = options.density_decay;
  defaults.trace = trace.get();
  if (!options.scenario.empty()) {
    defaults.scenario_spec = scenario_spec;
    defaults.scenario_world_seed = scale.seed;
  }

  const Result<RunResult> run = RunMethodOnStream(
      options.method, stream.value(), defaults, options.seed);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }

  Table table({"task", "env", "accuracy", "DDP", "EOD", "MI", "queries",
               "seconds"});
  for (const TaskMetrics& m : run.value().per_task) {
    table.AddRow({std::to_string(m.task_index + 1),
                  std::to_string(m.environment), FormatCell(m.accuracy, 3),
                  MetricOrNa(m.ddp, m.ddp_defined, 3),
                  MetricOrNa(m.eod, m.eod_defined, 3),
                  MetricOrNa(m.mi, m.mi_defined, 3),
                  std::to_string(m.queries_used), FormatCell(m.seconds, 2)});
  }
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    std::printf("%s on %s (B=%zu, A=%zu, seed=%llu)\n",
                options.method.c_str(),
                options.scenario.empty() ? options.dataset.c_str()
                                         : scenario_spec.c_str(),
                options.budget, options.acquisition,
                static_cast<unsigned long long>(options.seed));
    table.Print(std::cout);
    const StreamSummary& s = run.value().summary;
    std::printf(
        "\nstream means: acc=%.3f DDP=%.3f EOD=%.3f MI=%.3f "
        "(%zu queries, %.1fs)\n",
        s.mean_accuracy, s.mean_ddp, s.mean_eod, s.mean_mi,
        s.total_queries, run.value().total_seconds);
    if (s.undefined_metric_tasks > 0) {
      std::printf(
          "note: %zu task(s) had undefined fairness metrics "
          "(excluded from the means above)\n",
          s.undefined_metric_tasks);
    }
  }
  if (!options.trace_path.empty()) {
    std::fprintf(stderr, "trace written to %s\n",
                 options.trace_path.c_str());
  }
  if (options.telemetry && !options.csv) {
    if (const Telemetry* telemetry = Telemetry::Get()) {
      std::printf("\n");
      telemetry->WriteMarkdown(std::cout);
    }
  }
  return 0;
}
