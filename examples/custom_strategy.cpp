// Implementing a custom query strategy against the public API.
//
// The QueryStrategy interface (stream/strategy.h) is the library's
// extension point: anything that can rank unlabeled candidates can drive
// the online protocol. This example builds a "margin + group balance"
// strategy — pick low-margin samples, but keep the queried set balanced
// across sensitive groups — and runs it head-to-head with FACTION and
// Entropy-AL.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>

#include "baselines/uncertainty.h"
#include "core/presets.h"
#include "data/streams.h"
#include "stream/online_learner.h"
#include "stream/strategy.h"

namespace {

using namespace faction;

// A custom strategy only needs name() and SelectBatch(). The context gives
// read access to the current model, the labeled pool, and the unlabeled
// candidates' features / sensitive attributes (never their labels).
class BalancedMarginStrategy : public QueryStrategy {
 public:
  std::string name() const override { return "BalancedMargin"; }

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override {
    const Matrix proba =
        context.model->PredictProba(*context.candidate_features);
    const std::vector<double> uncertainty = MarginUncertainty(proba);
    const std::vector<int>& sensitive = *context.candidate_sensitive;

    // Rank candidates by margin uncertainty within each sensitive group,
    // then alternate between groups so each acquisition batch is balanced.
    std::vector<std::size_t> order(uncertainty.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return uncertainty[a] > uncertainty[b];
                     });
    std::vector<std::size_t> group_pos, group_neg;
    for (std::size_t idx : order) {
      (sensitive[idx] == 1 ? group_pos : group_neg).push_back(idx);
    }
    std::vector<std::size_t> picked;
    std::size_t i = 0, j = 0;
    while (picked.size() < batch && (i < group_pos.size() ||
                                     j < group_neg.size())) {
      if (i < group_pos.size()) picked.push_back(group_pos[i++]);
      if (picked.size() < batch && j < group_neg.size()) {
        picked.push_back(group_neg[j++]);
      }
    }
    return picked;
  }
};

}  // namespace

int main() {
  using namespace faction;

  NysfConfig config;
  config.scale.samples_per_task = 400;
  config.scale.seed = 3;
  const Result<std::vector<Dataset>> stream = MakeNysfStream(config);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  ExperimentDefaults defaults;
  defaults.budget_per_task = 100;
  defaults.acquisition_batch = 25;

  std::printf("method          accuracy  DDP    EOD    MI\n");

  // Run the custom strategy through the same OnlineLearner the built-in
  // methods use. Balanced *acquisition* alone is a weak fairness lever —
  // compare it with FACTION's density-based selection + regularization.
  {
    BalancedMarginStrategy strategy;
    OnlineLearnerConfig learner_config = MakeLearnerConfig(
        defaults, stream.value()[0].dim(), "Random", /*seed=*/5);
    OnlineLearner learner(learner_config, &strategy);
    const Result<RunResult> run = learner.Run(stream.value());
    if (!run.ok()) {
      std::fprintf(stderr, "custom: %s\n", run.status().ToString().c_str());
      return 1;
    }
    const StreamSummary& s = run.value().summary;
    std::printf("%-15s %.3f     %.3f  %.3f  %.3f\n", "BalancedMargin",
                s.mean_accuracy, s.mean_ddp, s.mean_eod, s.mean_mi);
  }

  for (const char* method : {"FACTION", "Entropy-AL"}) {
    const Result<RunResult> run =
        RunMethodOnStream(method, stream.value(), defaults, 5);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", method,
                   run.status().ToString().c_str());
      return 1;
    }
    const StreamSummary& s = run.value().summary;
    std::printf("%-15s %.3f     %.3f  %.3f  %.3f\n", method,
                s.mean_accuracy, s.mean_ddp, s.mean_eod, s.mean_mi);
  }
  return 0;
}
