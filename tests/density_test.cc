#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "density/fair_density.h"
#include "density/gaussian.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace faction {
namespace {

Matrix DrawSamples(std::size_t n, const std::vector<double>& mean,
                   double stddev, Rng* rng) {
  Matrix out(n, mean.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < mean.size(); ++j) {
      out(i, j) = rng->Gaussian(mean[j], stddev);
    }
  }
  return out;
}

// ------------------------------------------------------------- Gaussian

TEST(GaussianTest, RecoversMean) {
  Rng rng(1);
  const std::vector<double> mean = {2.0, -1.0, 0.5};
  const Matrix samples = DrawSamples(5000, mean, 1.0, &rng);
  CovarianceConfig config;
  config.shrinkage = 0.0;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(g.value().mean()[j], mean[j], 0.05);
  }
}

TEST(GaussianTest, LogPdfMatchesStandardNormal) {
  // Fit on many standard-normal samples; at the origin the density should
  // approach the analytic N(0, I) value.
  Rng rng(2);
  const std::vector<double> mean = {0.0, 0.0};
  const Matrix samples = DrawSamples(20000, mean, 1.0, &rng);
  CovarianceConfig config;
  config.shrinkage = 0.0;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  const double expect = -std::log(2.0 * M_PI);  // log N(0; 0, I) in 2-d
  EXPECT_NEAR(g.value().LogPdf({0.0, 0.0}), expect, 0.05);
}

TEST(GaussianTest, DensityDecaysWithDistance) {
  Rng rng(3);
  const Matrix samples = DrawSamples(500, {0.0, 0.0, 0.0, 0.0}, 1.0, &rng);
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  const double near = g.value().LogPdf({0.1, 0.0, 0.0, 0.0});
  const double far = g.value().LogPdf({5.0, 5.0, 5.0, 5.0});
  EXPECT_GT(near, far + 10.0);
}

TEST(GaussianTest, MahalanobisOfMeanIsZero) {
  Rng rng(4);
  const Matrix samples = DrawSamples(200, {1.0, 2.0}, 0.5, &rng);
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g.value().MahalanobisSquared(g.value().mean()), 0.0, 1e-12);
}

TEST(GaussianTest, SingleSampleFallsBackToIdentity) {
  Matrix samples(1, 3);
  samples(0, 0) = 1.0;
  samples(0, 1) = 2.0;
  samples(0, 2) = 3.0;
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config, 2.0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().mean(), (std::vector<double>{1.0, 2.0, 3.0}));
  // Identity * 2 => Mahalanobis of (mean + e0) is 1/2.
  EXPECT_NEAR(g.value().MahalanobisSquared({2.0, 2.0, 3.0}), 0.5, 1e-6);
}

TEST(GaussianTest, DegenerateDataSurvivesViaJitter) {
  // All samples identical: covariance is zero; jitter must rescue the fit.
  Matrix samples(50, 4, 3.0);
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(std::isfinite(g.value().LogPdf({3.0, 3.0, 3.0, 3.0})));
}

TEST(GaussianTest, CollinearDataSurvives) {
  // Samples on a line: rank-1 covariance.
  Matrix samples(100, 3);
  Rng rng(5);
  for (std::size_t i = 0; i < 100; ++i) {
    const double t = rng.Gaussian();
    samples(i, 0) = t;
    samples(i, 1) = 2.0 * t;
    samples(i, 2) = -t;
  }
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(std::isfinite(g.value().LogPdf({0.0, 0.0, 0.0})));
}

TEST(GaussianTest, RejectsEmpty) {
  const Matrix samples(0, 3);
  CovarianceConfig config;
  EXPECT_FALSE(Gaussian::Fit(samples, config).ok());
}

TEST(GaussianTest, ShrinkageMovesTowardIsotropy) {
  // Strongly anisotropic data; heavy shrinkage should pull the two
  // principal variances together, reducing |logpdf| asymmetry.
  Rng rng(6);
  Matrix samples(2000, 2);
  for (std::size_t i = 0; i < 2000; ++i) {
    samples(i, 0) = rng.Gaussian(0.0, 3.0);
    samples(i, 1) = rng.Gaussian(0.0, 0.3);
  }
  CovarianceConfig none;
  none.shrinkage = 0.0;
  CovarianceConfig heavy;
  heavy.shrinkage = 0.9;
  const Result<Gaussian> g0 = Gaussian::Fit(samples, none);
  const Result<Gaussian> g1 = Gaussian::Fit(samples, heavy);
  ASSERT_TRUE(g0.ok() && g1.ok());
  // Along the low-variance axis the unshrunk fit reacts much more.
  const double react0 = g0.value().MahalanobisSquared({0.0, 1.0});
  const double react1 = g1.value().MahalanobisSquared({0.0, 1.0});
  EXPECT_GT(react0, react1 * 2.0);
}

// -------------------------------------------------- FairDensityEstimator

// A labeled pool with controllable group/class separation.
struct PoolSpec {
  std::size_t per_cell = 100;
  double group_gap = 2.0;  // distance between sensitive groups
  double class_gap = 4.0;  // distance between classes
};

void BuildPool(const PoolSpec& spec, Rng* rng, Matrix* features,
               std::vector<int>* labels, std::vector<int>* sensitive) {
  const std::size_t total = spec.per_cell * 4;
  features->Resize(total, 2);
  labels->clear();
  sensitive->clear();
  std::size_t row = 0;
  for (int y = 0; y < 2; ++y) {
    for (int s : {-1, 1}) {
      for (std::size_t i = 0; i < spec.per_cell; ++i) {
        (*features)(row, 0) =
            rng->Gaussian(y * spec.class_gap, 0.6);
        (*features)(row, 1) =
            rng->Gaussian(s * spec.group_gap / 2.0, 0.6);
        labels->push_back(y);
        sensitive->push_back(s);
        ++row;
      }
    }
  }
}

TEST(FairDensityTest, WeightsMatchEmpiricalJoint) {
  Rng rng(7);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  for (int y = 0; y < 2; ++y) {
    for (int s : {-1, 1}) {
      EXPECT_TRUE(est.value().HasComponent(y, s));
      EXPECT_NEAR(est.value().Weight(y, s), 0.25, 1e-12);
    }
  }
}

TEST(FairDensityTest, MarginalIsMixtureOfComponents) {
  Rng rng(8);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  const std::vector<double> z = {0.5, 0.5};
  double mixture = 0.0;
  for (int y = 0; y < 2; ++y) {
    for (int s : {-1, 1}) {
      mixture += est.value().Weight(y, s) *
                 std::exp(est.value().LogComponentDensity(z, y, s));
    }
  }
  EXPECT_NEAR(std::exp(est.value().LogMarginalDensity(z)), mixture, 1e-9);
}

TEST(FairDensityTest, OodSampleHasLowerDensity) {
  Rng rng(9);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  const double in_dist = est.value().LogMarginalDensity({0.0, 1.0});
  const double ood = est.value().LogMarginalDensity({30.0, -30.0});
  EXPECT_GT(in_dist, ood + 50.0);
}

TEST(FairDensityTest, DeltaGZeroWhenGroupsCoincide) {
  // group_gap = 0: both sensitive components of each class share the same
  // distribution, so Delta g_c must be tiny everywhere in-distribution.
  Rng rng(10);
  Matrix features;
  std::vector<int> labels, sensitive;
  PoolSpec spec;
  spec.group_gap = 0.0;
  spec.per_cell = 400;
  BuildPool(spec, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  config.shrinkage = 0.3;  // stabilize the comparison
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  const std::vector<double> z = {0.0, 0.0};
  const double delta = est.value().DeltaG(z, 0);
  const double density = std::exp(est.value().LogComponentDensity(z, 0, 1));
  EXPECT_LT(delta, density * 0.35);
}

TEST(FairDensityTest, DeltaGLargeWhenGroupsSeparate) {
  Rng rng(11);
  Matrix features;
  std::vector<int> labels, sensitive;
  PoolSpec spec;
  spec.group_gap = 4.0;
  BuildPool(spec, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  // At the +1-group's center of class 0, the +1 component dominates.
  const std::vector<double> z = {0.0, 2.0};
  const double lp = est.value().LogComponentDensity(z, 0, 1);
  const double ln = est.value().LogComponentDensity(z, 0, -1);
  EXPECT_GT(lp, ln + 2.0);
  EXPECT_GT(est.value().DeltaG(z, 0), 0.0);
}

TEST(FairDensityTest, MissingComponentIsHandled) {
  // No (y=1, s=-1) cell in the pool.
  Matrix features(30, 2);
  std::vector<int> labels, sensitive;
  Rng rng(12);
  for (std::size_t i = 0; i < 30; ++i) {
    features(i, 0) = rng.Gaussian();
    features(i, 1) = rng.Gaussian();
    labels.push_back(i % 2);
    sensitive.push_back(i % 2 == 1 ? 1 : (i % 4 == 0 ? 1 : -1));
  }
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est.value().HasComponent(1, -1));
  EXPECT_EQ(est.value().Weight(1, -1), 0.0);
  const std::vector<double> z = {0.0, 0.0};
  EXPECT_TRUE(std::isinf(est.value().LogComponentDensity(z, 1, -1)));
  EXPECT_TRUE(std::isfinite(est.value().LogMarginalDensity(z)));
}

TEST(FairDensityTest, RejectsBadInputs) {
  CovarianceConfig config;
  EXPECT_FALSE(
      FairDensityEstimator::Fit(Matrix(0, 2), {}, {}, config).ok());
  Matrix features(2, 2);
  EXPECT_FALSE(
      FairDensityEstimator::Fit(features, {0}, {1, -1}, config).ok());
}

// ------------------------------------------------ ClassDensityEstimator

TEST(ClassDensityTest, MarginalAndClassDensities) {
  Rng rng(13);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<ClassDensityEstimator> est =
      ClassDensityEstimator::Fit(features, labels, config);
  ASSERT_TRUE(est.ok());
  // Near class-1's center, class 1's density dominates.
  const std::vector<double> z = {4.0, 0.0};
  EXPECT_GT(est.value().LogClassDensity(z, 1),
            est.value().LogClassDensity(z, 0) + 2.0);
  EXPECT_TRUE(std::isfinite(est.value().LogMarginalDensity(z)));
}

TEST(ClassDensityTest, OodDetection) {
  Rng rng(14);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<ClassDensityEstimator> est =
      ClassDensityEstimator::Fit(features, labels, config);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est.value().LogMarginalDensity({2.0, 0.0}),
            est.value().LogMarginalDensity({50.0, 50.0}) + 100.0);
}

TEST(ClassDensityTest, RejectsEmpty) {
  CovarianceConfig config;
  EXPECT_FALSE(ClassDensityEstimator::Fit(Matrix(0, 2), {}, config).ok());
}


// ---------------------------------------------------- incremental refits

// Builds a mildly anisotropic random batch.
Matrix RandomBatch(std::size_t n, std::size_t d, Rng* rng) {
  Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      m(i, j) = rng->Gaussian() * (1.0 + 0.2 * static_cast<double>(j));
    }
  }
  return m;
}

Matrix RowRange(const Matrix& m, std::size_t r0, std::size_t r1) {
  Matrix out(r1 - r0, m.cols());
  for (std::size_t i = r0; i < r1; ++i) {
    std::copy(m.row_data(i), m.row_data(i) + m.cols(), out.row_data(i - r0));
  }
  return out;
}

TEST(GaussianIncrementalTest, UpdateMatchesBatchFit) {
  Rng rng(101);
  const std::size_t d = 6;
  const Matrix all = RandomBatch(400, d, &rng);
  CovarianceConfig config;

  Result<Gaussian> inc = Gaussian::Fit(RowRange(all, 0, 100), config);
  ASSERT_TRUE(inc.ok());
  // Fold the remaining rows in uneven chunks.
  const std::size_t cuts[] = {100, 130, 131, 250, 400};
  for (std::size_t c = 0; c + 1 < 5; ++c) {
    ASSERT_TRUE(inc.value()
                    .Update(RowRange(all, cuts[c], cuts[c + 1]), config)
                    .ok());
  }
  const Result<Gaussian> batch = Gaussian::Fit(all, config);
  ASSERT_TRUE(batch.ok());

  EXPECT_EQ(inc.value().count(), 400u);
  // Means come from identical row-ordered sums: bitwise equal.
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_EQ(inc.value().mean()[j], batch.value().mean()[j]) << "dim " << j;
  }
  // Covariances differ only in summation association (raw-moment vs
  // two-pass centered): log-dets and densities agree to rounding.
  EXPECT_NEAR(inc.value().log_det(), batch.value().log_det(),
              1e-6 * (1.0 + std::fabs(batch.value().log_det())));
  std::vector<double> probe(d);
  for (std::size_t j = 0; j < d; ++j) probe[j] = 0.3 * static_cast<double>(j);
  EXPECT_NEAR(inc.value().LogPdf(probe), batch.value().LogPdf(probe),
              1e-6 * (1.0 + std::fabs(batch.value().LogPdf(probe))));
}

TEST(GaussianIncrementalTest, UpdateFromSingleSampleLeavesFallback) {
  Rng rng(102);
  CovarianceConfig config;
  Matrix one = RandomBatch(1, 4, &rng);
  Result<Gaussian> g = Gaussian::Fit(one, config, 2.0);
  ASSERT_TRUE(g.ok());
  // Growing a single-sample fit re-derives a real covariance from moments.
  ASSERT_TRUE(g.value().Update(RandomBatch(60, 4, &rng), config).ok());
  EXPECT_EQ(g.value().count(), 61u);
  const Result<Gaussian> fresh = Gaussian::Fit(RandomBatch(61, 4, &rng), config);
  ASSERT_TRUE(fresh.ok());  // sanity: same machinery still fits
}

TEST(GaussianIncrementalTest, UpdateRejectsBadInputs) {
  Gaussian unfitted;
  CovarianceConfig config;
  EXPECT_FALSE(unfitted.Update(Matrix(3, 2), config).ok());
  Rng rng(103);
  Result<Gaussian> g = Gaussian::Fit(RandomBatch(10, 3, &rng), config);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g.value().Update(Matrix(2, 4), config).ok());  // wrong dim
  EXPECT_TRUE(g.value().Update(Matrix(0, 3), config).ok());   // no-op
  EXPECT_EQ(g.value().count(), 10u);
}

TEST(FairDensityIncrementalTest, InterleavedUpdatesMatchBatchFit) {
  Rng rng(104);
  const std::size_t d = 4;
  const std::size_t n = 240;
  Matrix z(n, d);
  std::vector<int> labels(n), sensitive(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % 2);
    sensitive[i] = i % 3 == 0 ? -1 : 1;
    for (std::size_t j = 0; j < d; ++j) {
      z(i, j) = rng.Gaussian() + (labels[i] == 1 ? 1.5 : 0.0) +
                (sensitive[i] == 1 ? 0.5 : 0.0);
    }
  }
  CovarianceConfig config;

  auto slice = [&](std::size_t r0, std::size_t r1, Matrix* zs,
                   std::vector<int>* ys, std::vector<int>* ss) {
    *zs = RowRange(z, r0, r1);
    ys->assign(labels.begin() + static_cast<std::ptrdiff_t>(r0),
               labels.begin() + static_cast<std::ptrdiff_t>(r1));
    ss->assign(sensitive.begin() + static_cast<std::ptrdiff_t>(r0),
               sensitive.begin() + static_cast<std::ptrdiff_t>(r1));
  };

  Matrix zs;
  std::vector<int> ys, ss;
  slice(0, 80, &zs, &ys, &ss);
  Result<FairDensityEstimator> inc =
      FairDensityEstimator::Fit(zs, ys, ss, config);
  ASSERT_TRUE(inc.ok());
  const std::size_t cuts[] = {80, 81, 140, 200, 240};
  for (std::size_t c = 0; c + 1 < 5; ++c) {
    slice(cuts[c], cuts[c + 1], &zs, &ys, &ss);
    ASSERT_TRUE(inc.value().Update(zs, ys, ss, config).ok());
  }
  const Result<FairDensityEstimator> batch =
      FairDensityEstimator::Fit(z, labels, sensitive, config);
  ASSERT_TRUE(batch.ok());

  EXPECT_EQ(inc.value().total_count(), n);
  // Weights count the same rows: exactly equal.
  for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
    for (int s : {-1, 1}) {
      EXPECT_EQ(inc.value().Weight(y, s), batch.value().Weight(y, s));
      EXPECT_EQ(inc.value().HasComponent(y, s),
                batch.value().HasComponent(y, s));
    }
  }
  // Densities agree to rounding everywhere that matters.
  Rng probe_rng(105);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> probe(d);
    for (double& v : probe) v = probe_rng.Gaussian() * 2.0;
    const double a = inc.value().LogMarginalDensity(probe);
    const double b = batch.value().LogMarginalDensity(probe);
    EXPECT_NEAR(a, b, 1e-6 * (1.0 + std::fabs(b))) << "probe " << t;
  }
}

TEST(FairDensityIncrementalTest, UpdateCreatesMissingComponent) {
  Rng rng(106);
  const std::size_t d = 3;
  Matrix z(40, d);
  std::vector<int> labels(40, 0), sensitive(40, 1);
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] = rng.Gaussian();
  CovarianceConfig config;
  Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(z, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est.value().HasComponent(1, -1));

  Matrix fresh(12, d);
  std::vector<int> fy(12, 1), fs(12, -1);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    fresh.data()[i] = rng.Gaussian() + 3.0;
  }
  ASSERT_TRUE(est.value().Update(fresh, fy, fs, config).ok());
  EXPECT_TRUE(est.value().HasComponent(1, -1));
  EXPECT_NEAR(est.value().Weight(1, -1), 12.0 / 52.0, 1e-12);
}

TEST(ClassDensityIncrementalTest, UpdatesMatchBatchFit) {
  Rng rng(107);
  const std::size_t d = 3;
  const std::size_t n = 160;
  Matrix z(n, d);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % 2);
    for (std::size_t j = 0; j < d; ++j) {
      z(i, j) = rng.Gaussian() + (labels[i] == 1 ? 2.0 : 0.0);
    }
  }
  CovarianceConfig config;
  Matrix head = RowRange(z, 0, 60);
  std::vector<int> head_y(labels.begin(), labels.begin() + 60);
  Result<ClassDensityEstimator> inc =
      ClassDensityEstimator::Fit(head, head_y, config);
  ASSERT_TRUE(inc.ok());
  Matrix tail = RowRange(z, 60, n);
  std::vector<int> tail_y(labels.begin() + 60, labels.end());
  ASSERT_TRUE(inc.value().Update(tail, tail_y, config).ok());
  const Result<ClassDensityEstimator> batch =
      ClassDensityEstimator::Fit(z, labels, config);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(inc.value().total_count(), n);
  std::vector<double> probe(d, 0.7);
  EXPECT_NEAR(inc.value().LogMarginalDensity(probe),
              batch.value().LogMarginalDensity(probe), 1e-6);
}

// ------------------------------- sliding-window forgetting (PR 8)

CovarianceConfig Forgetting() {
  CovarianceConfig config;
  config.forgetting = true;
  return config;
}

std::uint64_t Bits(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

// Restores the dispatch tier (and, via Disable, the telemetry default)
// the surrounding tests run under.
class ScopedSimdLevelGuard {
 public:
  ScopedSimdLevelGuard() : saved_(ActiveSimdLevel()) {}
  ~ScopedSimdLevelGuard() { (void)SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

// Sliding a window one row at a time (evict the oldest via a rank-1
// downdate, fold the newest) must agree with a batch Fit on the final
// window contents to rounding — and the incremental path itself must be
// bitwise identical across every supported SIMD dispatch tier (the
// downdate guard solve is the only dispatched kernel on the path).
TEST(GaussianForgettingTest, WindowedSlideMatchesBatchFitAcrossTiers) {
  ScopedSimdLevelGuard guard;
  Rng rng(201);
  const std::size_t n = 300, window = 120, d = 6;
  const Matrix all = RandomBatch(n, d, &rng);
  const CovarianceConfig config = Forgetting();

  const Result<Gaussian> batch =
      Gaussian::Fit(RowRange(all, n - window, n), config);
  ASSERT_TRUE(batch.ok());
  std::vector<double> probe(d);
  for (std::size_t j = 0; j < d; ++j) probe[j] = 0.4 * static_cast<double>(j);

  std::vector<std::uint64_t> signature;  // tier 0 (generic) reference
  for (int l = 0; l < 3; ++l) {
    const SimdLevel level = static_cast<SimdLevel>(l);
    if (!SetSimdLevel(level).ok()) continue;

    Result<Gaussian> inc = Gaussian::Fit(RowRange(all, 0, window), config);
    ASSERT_TRUE(inc.ok());
    for (std::size_t t = window; t < n; ++t) {
      ASSERT_TRUE(
          inc.value().DowndateOne(all.row_data(t - window), config).ok());
      ASSERT_TRUE(inc.value().UpdateOne(all.row_data(t), config).ok());
    }

    EXPECT_EQ(inc.value().count(), window);
    EXPECT_DOUBLE_EQ(inc.value().weight(), static_cast<double>(window));
    for (std::size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(inc.value().mean()[j], batch.value().mean()[j], 1e-9)
          << "tier " << l << " dim " << j;
    }
    EXPECT_NEAR(inc.value().log_det(), batch.value().log_det(),
                1e-6 * (1.0 + std::fabs(batch.value().log_det())));
    EXPECT_NEAR(inc.value().LogPdf(probe), batch.value().LogPdf(probe),
                1e-6 * (1.0 + std::fabs(batch.value().LogPdf(probe))));

    std::vector<std::uint64_t> tier_signature;
    tier_signature.push_back(Bits(inc.value().LogPdf(probe)));
    tier_signature.push_back(Bits(inc.value().log_det()));
    for (std::size_t j = 0; j < d; ++j) {
      tier_signature.push_back(Bits(inc.value().mean()[j]));
    }
    if (signature.empty()) {
      signature = tier_signature;
    } else {
      EXPECT_EQ(signature, tier_signature)
          << "incremental slide diverged at tier " << l;
    }
  }
  ASSERT_FALSE(signature.empty());
}

// Decay rescales the statistics and the effective weight but leaves the
// cached mean/factor/log-det literally untouched: the density is bitwise
// identical until the next Update/Downdate.
TEST(GaussianForgettingTest, DecayLeavesDensityBitwiseUntouched) {
  Rng rng(202);
  const std::size_t d = 5;
  Result<Gaussian> g = Gaussian::Fit(RandomBatch(80, d, &rng), Forgetting());
  ASSERT_TRUE(g.ok());
  std::vector<double> probe(d, 0.3);
  const std::uint64_t pdf_bits = Bits(g.value().LogPdf(probe));
  const std::uint64_t det_bits = Bits(g.value().log_det());
  const std::vector<double> mean = g.value().mean();

  g.value().Decay(0.9);
  EXPECT_EQ(Bits(g.value().LogPdf(probe)), pdf_bits);
  EXPECT_EQ(Bits(g.value().log_det()), det_bits);
  EXPECT_EQ(g.value().mean(), mean);
  EXPECT_EQ(g.value().count(), 80u);
  EXPECT_DOUBLE_EQ(g.value().weight(), 80.0 * 0.9);
  g.value().Decay(0.9);
  EXPECT_DOUBLE_EQ(g.value().weight(), 80.0 * 0.9 * 0.9);
}

// Downdating a component below d + 1 effective samples must trip the
// positive-definiteness guard and fall back to the refactor path (counted
// by density.downdate_fallback_refactors) instead of producing a broken
// factor.
TEST(GaussianForgettingTest, DowndateBelowDimPlusOneFallsBackToRefactor) {
  Telemetry::Enable()->Reset();
  Rng rng(203);
  const std::size_t d = 4;
  const Matrix rows = RandomBatch(d + 2, d, &rng);
  Result<Gaussian> g = Gaussian::Fit(rows, Forgetting());
  ASSERT_TRUE(g.ok());

  // 6 -> 5 -> 4 effective samples: the second eviction lands below d + 1.
  ASSERT_TRUE(g.value().DowndateOne(rows.row_data(0), Forgetting()).ok());
  ASSERT_TRUE(g.value().DowndateOne(rows.row_data(1), Forgetting()).ok());
  EXPECT_GE(TelemetryCounterValue("density.downdate_fallback_refactors"), 1u);
  EXPECT_GT(TelemetryCounterValue("density.downdates"), 0u);

  // The fallback refactor leaves a usable fit that matches a batch fit on
  // the surviving rows.
  const Result<Gaussian> batch =
      Gaussian::Fit(RowRange(rows, 2, d + 2), Forgetting());
  ASSERT_TRUE(batch.ok());
  std::vector<double> probe(d, 0.5);
  EXPECT_NEAR(g.value().LogPdf(probe), batch.value().LogPdf(probe),
              1e-6 * (1.0 + std::fabs(batch.value().LogPdf(probe))));
  Telemetry::Enable()->Reset();
  Telemetry::Disable();
}

// Labeled pool for the mixture-level window tests: labels alternate,
// sensitive splits 1/3 vs 2/3, light class/group shifts.
void BuildLabeledRows(std::size_t n, std::size_t d, Rng* rng, Matrix* z,
                      std::vector<int>* labels, std::vector<int>* sensitive) {
  z->Resize(n, d);
  labels->resize(n);
  sensitive->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*labels)[i] = static_cast<int>(i % 2);
    (*sensitive)[i] = i % 3 == 0 ? -1 : 1;
    for (std::size_t j = 0; j < d; ++j) {
      (*z)(i, j) = rng->Gaussian() + ((*labels)[i] == 1 ? 1.5 : 0.0) +
                   ((*sensitive)[i] == 1 ? 0.5 : 0.0);
    }
  }
}

TEST(FairDensityForgettingTest, WindowedSlideMatchesBatchFit) {
  Rng rng(204);
  const std::size_t n = 240, window = 120, d = 4;
  Matrix z;
  std::vector<int> labels, sensitive;
  BuildLabeledRows(n, d, &rng, &z, &labels, &sensitive);
  const CovarianceConfig config = Forgetting();

  Matrix head = RowRange(z, 0, window);
  std::vector<int> hy(labels.begin(),
                      labels.begin() + static_cast<std::ptrdiff_t>(window));
  std::vector<int> hs(sensitive.begin(),
                      sensitive.begin() + static_cast<std::ptrdiff_t>(window));
  Result<FairDensityEstimator> inc =
      FairDensityEstimator::Fit(head, hy, hs, config);
  ASSERT_TRUE(inc.ok());
  for (std::size_t t = window; t < n; ++t) {
    ASSERT_TRUE(inc.value()
                    .DowndateOne(z.row_data(t - window), labels[t - window],
                                 sensitive[t - window], config)
                    .ok());
    ASSERT_TRUE(
        inc.value().UpdateOne(z.row_data(t), labels[t], sensitive[t], config)
            .ok());
  }

  Matrix tail = RowRange(z, n - window, n);
  std::vector<int> ty(labels.begin() + static_cast<std::ptrdiff_t>(n - window),
                      labels.end());
  std::vector<int> ts(
      sensitive.begin() + static_cast<std::ptrdiff_t>(n - window),
      sensitive.end());
  const Result<FairDensityEstimator> batch =
      FairDensityEstimator::Fit(tail, ty, ts, config);
  ASSERT_TRUE(batch.ok());

  EXPECT_EQ(inc.value().total_count(), window);
  // Window masses are exact small integers in both paths: the mixture
  // weights agree bitwise.
  for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
    for (int s : {-1, 1}) {
      EXPECT_EQ(inc.value().Weight(y, s), batch.value().Weight(y, s));
      EXPECT_EQ(inc.value().HasComponent(y, s),
                batch.value().HasComponent(y, s));
    }
  }
  Rng probe_rng(205);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> probe(d);
    for (double& v : probe) v = probe_rng.Gaussian() * 2.0;
    const double a = inc.value().LogMarginalDensity(probe);
    const double b = batch.value().LogMarginalDensity(probe);
    EXPECT_NEAR(a, b, 1e-6 * (1.0 + std::fabs(b))) << "probe " << t;
  }
}

// Evicting a component's last remaining row drops the component from the
// mixture — exactly what a batch fit on the remaining window produces —
// and a later arrival re-creates it through the fresh-fit path.
TEST(FairDensityForgettingTest, EvictingLastRowDropsComponent) {
  Rng rng(206);
  const std::size_t d = 3;
  Matrix z(41, d);
  std::vector<int> labels(41, 0), sensitive(41, 1);
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] = rng.Gaussian();
  labels[40] = 1;
  sensitive[40] = -1;  // the only (1, -1) row
  const CovarianceConfig config = Forgetting();
  Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(z, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  ASSERT_TRUE(est.value().HasComponent(1, -1));

  ASSERT_TRUE(est.value().DowndateOne(z.row_data(40), 1, -1, config).ok());
  EXPECT_FALSE(est.value().HasComponent(1, -1));
  EXPECT_EQ(est.value().Weight(1, -1), 0.0);
  EXPECT_EQ(est.value().total_count(), 40u);
  const std::vector<double> probe(d, 0.0);
  EXPECT_TRUE(std::isinf(est.value().LogComponentDensity(probe, 1, -1)));

  // The fresh-fit path re-arms: folding a (1, -1) row re-creates it.
  ASSERT_TRUE(est.value().UpdateOne(z.row_data(40), 1, -1, config).ok());
  EXPECT_TRUE(est.value().HasComponent(1, -1));
}

// Evicting a row from a component that never absorbed one is a checked
// abort: the window must only hand back rows it folded.
TEST(FairDensityForgettingDeathTest, EvictingNeverFoldedRowDies) {
  Rng rng(207);
  const std::size_t d = 3;
  Matrix z(40, d);
  std::vector<int> labels(40, 0), sensitive(40, 1);
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] = rng.Gaussian();
  const CovarianceConfig config = Forgetting();
  Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(z, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  ASSERT_FALSE(est.value().HasComponent(1, -1));
  const std::vector<double> row(d, 0.0);
  EXPECT_DEATH(
      (void)est.value().DowndateOne(row.data(), 1, -1, config),
      "CHECK failed");
}

// Mixture weights are ratios of uniformly decayed masses: Decay leaves
// them (and every component density) bitwise untouched; only subsequent
// arrivals tip the balance.
TEST(FairDensityForgettingTest, DecayPreservesMixtureWeightsBitwise) {
  Rng rng(208);
  const std::size_t n = 120, d = 4;
  Matrix z;
  std::vector<int> labels, sensitive;
  BuildLabeledRows(n, d, &rng, &z, &labels, &sensitive);
  const CovarianceConfig config = Forgetting();
  Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(z, labels, sensitive, config);
  ASSERT_TRUE(est.ok());

  const std::vector<double> probe(d, 0.2);
  std::vector<std::uint64_t> before;
  for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
    for (int s : {-1, 1}) before.push_back(Bits(est.value().Weight(y, s)));
  }
  before.push_back(Bits(est.value().LogMarginalDensity(probe)));

  est.value().Decay(0.8);
  std::vector<std::uint64_t> after;
  for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
    for (int s : {-1, 1}) after.push_back(Bits(est.value().Weight(y, s)));
  }
  after.push_back(Bits(est.value().LogMarginalDensity(probe)));
  EXPECT_EQ(before, after);

  // A post-decay arrival carries relatively more mass than an undecayed
  // one would: its bucket's weight moves past the undecayed ratio.
  const double w0 = est.value().Weight(labels[0], sensitive[0]);
  ASSERT_TRUE(
      est.value().UpdateOne(z.row_data(0), labels[0], sensitive[0], config)
          .ok());
  EXPECT_GT(est.value().Weight(labels[0], sensitive[0]), w0);
}

}  // namespace
}  // namespace faction
