#include <cmath>

#include "common/rng.h"
#include "density/fair_density.h"
#include "density/gaussian.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace faction {
namespace {

Matrix DrawSamples(std::size_t n, const std::vector<double>& mean,
                   double stddev, Rng* rng) {
  Matrix out(n, mean.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < mean.size(); ++j) {
      out(i, j) = rng->Gaussian(mean[j], stddev);
    }
  }
  return out;
}

// ------------------------------------------------------------- Gaussian

TEST(GaussianTest, RecoversMean) {
  Rng rng(1);
  const std::vector<double> mean = {2.0, -1.0, 0.5};
  const Matrix samples = DrawSamples(5000, mean, 1.0, &rng);
  CovarianceConfig config;
  config.shrinkage = 0.0;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(g.value().mean()[j], mean[j], 0.05);
  }
}

TEST(GaussianTest, LogPdfMatchesStandardNormal) {
  // Fit on many standard-normal samples; at the origin the density should
  // approach the analytic N(0, I) value.
  Rng rng(2);
  const std::vector<double> mean = {0.0, 0.0};
  const Matrix samples = DrawSamples(20000, mean, 1.0, &rng);
  CovarianceConfig config;
  config.shrinkage = 0.0;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  const double expect = -std::log(2.0 * M_PI);  // log N(0; 0, I) in 2-d
  EXPECT_NEAR(g.value().LogPdf({0.0, 0.0}), expect, 0.05);
}

TEST(GaussianTest, DensityDecaysWithDistance) {
  Rng rng(3);
  const Matrix samples = DrawSamples(500, {0.0, 0.0, 0.0, 0.0}, 1.0, &rng);
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  const double near = g.value().LogPdf({0.1, 0.0, 0.0, 0.0});
  const double far = g.value().LogPdf({5.0, 5.0, 5.0, 5.0});
  EXPECT_GT(near, far + 10.0);
}

TEST(GaussianTest, MahalanobisOfMeanIsZero) {
  Rng rng(4);
  const Matrix samples = DrawSamples(200, {1.0, 2.0}, 0.5, &rng);
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g.value().MahalanobisSquared(g.value().mean()), 0.0, 1e-12);
}

TEST(GaussianTest, SingleSampleFallsBackToIdentity) {
  Matrix samples(1, 3);
  samples(0, 0) = 1.0;
  samples(0, 1) = 2.0;
  samples(0, 2) = 3.0;
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config, 2.0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().mean(), (std::vector<double>{1.0, 2.0, 3.0}));
  // Identity * 2 => Mahalanobis of (mean + e0) is 1/2.
  EXPECT_NEAR(g.value().MahalanobisSquared({2.0, 2.0, 3.0}), 0.5, 1e-6);
}

TEST(GaussianTest, DegenerateDataSurvivesViaJitter) {
  // All samples identical: covariance is zero; jitter must rescue the fit.
  Matrix samples(50, 4, 3.0);
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(std::isfinite(g.value().LogPdf({3.0, 3.0, 3.0, 3.0})));
}

TEST(GaussianTest, CollinearDataSurvives) {
  // Samples on a line: rank-1 covariance.
  Matrix samples(100, 3);
  Rng rng(5);
  for (std::size_t i = 0; i < 100; ++i) {
    const double t = rng.Gaussian();
    samples(i, 0) = t;
    samples(i, 1) = 2.0 * t;
    samples(i, 2) = -t;
  }
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(std::isfinite(g.value().LogPdf({0.0, 0.0, 0.0})));
}

TEST(GaussianTest, RejectsEmpty) {
  const Matrix samples(0, 3);
  CovarianceConfig config;
  EXPECT_FALSE(Gaussian::Fit(samples, config).ok());
}

TEST(GaussianTest, ShrinkageMovesTowardIsotropy) {
  // Strongly anisotropic data; heavy shrinkage should pull the two
  // principal variances together, reducing |logpdf| asymmetry.
  Rng rng(6);
  Matrix samples(2000, 2);
  for (std::size_t i = 0; i < 2000; ++i) {
    samples(i, 0) = rng.Gaussian(0.0, 3.0);
    samples(i, 1) = rng.Gaussian(0.0, 0.3);
  }
  CovarianceConfig none;
  none.shrinkage = 0.0;
  CovarianceConfig heavy;
  heavy.shrinkage = 0.9;
  const Result<Gaussian> g0 = Gaussian::Fit(samples, none);
  const Result<Gaussian> g1 = Gaussian::Fit(samples, heavy);
  ASSERT_TRUE(g0.ok() && g1.ok());
  // Along the low-variance axis the unshrunk fit reacts much more.
  const double react0 = g0.value().MahalanobisSquared({0.0, 1.0});
  const double react1 = g1.value().MahalanobisSquared({0.0, 1.0});
  EXPECT_GT(react0, react1 * 2.0);
}

// -------------------------------------------------- FairDensityEstimator

// A labeled pool with controllable group/class separation.
struct PoolSpec {
  std::size_t per_cell = 100;
  double group_gap = 2.0;  // distance between sensitive groups
  double class_gap = 4.0;  // distance between classes
};

void BuildPool(const PoolSpec& spec, Rng* rng, Matrix* features,
               std::vector<int>* labels, std::vector<int>* sensitive) {
  const std::size_t total = spec.per_cell * 4;
  features->Resize(total, 2);
  labels->clear();
  sensitive->clear();
  std::size_t row = 0;
  for (int y = 0; y < 2; ++y) {
    for (int s : {-1, 1}) {
      for (std::size_t i = 0; i < spec.per_cell; ++i) {
        (*features)(row, 0) =
            rng->Gaussian(y * spec.class_gap, 0.6);
        (*features)(row, 1) =
            rng->Gaussian(s * spec.group_gap / 2.0, 0.6);
        labels->push_back(y);
        sensitive->push_back(s);
        ++row;
      }
    }
  }
}

TEST(FairDensityTest, WeightsMatchEmpiricalJoint) {
  Rng rng(7);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  for (int y = 0; y < 2; ++y) {
    for (int s : {-1, 1}) {
      EXPECT_TRUE(est.value().HasComponent(y, s));
      EXPECT_NEAR(est.value().Weight(y, s), 0.25, 1e-12);
    }
  }
}

TEST(FairDensityTest, MarginalIsMixtureOfComponents) {
  Rng rng(8);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  const std::vector<double> z = {0.5, 0.5};
  double mixture = 0.0;
  for (int y = 0; y < 2; ++y) {
    for (int s : {-1, 1}) {
      mixture += est.value().Weight(y, s) *
                 std::exp(est.value().LogComponentDensity(z, y, s));
    }
  }
  EXPECT_NEAR(std::exp(est.value().LogMarginalDensity(z)), mixture, 1e-9);
}

TEST(FairDensityTest, OodSampleHasLowerDensity) {
  Rng rng(9);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  const double in_dist = est.value().LogMarginalDensity({0.0, 1.0});
  const double ood = est.value().LogMarginalDensity({30.0, -30.0});
  EXPECT_GT(in_dist, ood + 50.0);
}

TEST(FairDensityTest, DeltaGZeroWhenGroupsCoincide) {
  // group_gap = 0: both sensitive components of each class share the same
  // distribution, so Delta g_c must be tiny everywhere in-distribution.
  Rng rng(10);
  Matrix features;
  std::vector<int> labels, sensitive;
  PoolSpec spec;
  spec.group_gap = 0.0;
  spec.per_cell = 400;
  BuildPool(spec, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  config.shrinkage = 0.3;  // stabilize the comparison
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  const std::vector<double> z = {0.0, 0.0};
  const double delta = est.value().DeltaG(z, 0);
  const double density = std::exp(est.value().LogComponentDensity(z, 0, 1));
  EXPECT_LT(delta, density * 0.35);
}

TEST(FairDensityTest, DeltaGLargeWhenGroupsSeparate) {
  Rng rng(11);
  Matrix features;
  std::vector<int> labels, sensitive;
  PoolSpec spec;
  spec.group_gap = 4.0;
  BuildPool(spec, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  // At the +1-group's center of class 0, the +1 component dominates.
  const std::vector<double> z = {0.0, 2.0};
  const double lp = est.value().LogComponentDensity(z, 0, 1);
  const double ln = est.value().LogComponentDensity(z, 0, -1);
  EXPECT_GT(lp, ln + 2.0);
  EXPECT_GT(est.value().DeltaG(z, 0), 0.0);
}

TEST(FairDensityTest, MissingComponentIsHandled) {
  // No (y=1, s=-1) cell in the pool.
  Matrix features(30, 2);
  std::vector<int> labels, sensitive;
  Rng rng(12);
  for (std::size_t i = 0; i < 30; ++i) {
    features(i, 0) = rng.Gaussian();
    features(i, 1) = rng.Gaussian();
    labels.push_back(i % 2);
    sensitive.push_back(i % 2 == 1 ? 1 : (i % 4 == 0 ? 1 : -1));
  }
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est.value().HasComponent(1, -1));
  EXPECT_EQ(est.value().Weight(1, -1), 0.0);
  const std::vector<double> z = {0.0, 0.0};
  EXPECT_TRUE(std::isinf(est.value().LogComponentDensity(z, 1, -1)));
  EXPECT_TRUE(std::isfinite(est.value().LogMarginalDensity(z)));
}

TEST(FairDensityTest, RejectsBadInputs) {
  CovarianceConfig config;
  EXPECT_FALSE(
      FairDensityEstimator::Fit(Matrix(0, 2), {}, {}, config).ok());
  Matrix features(2, 2);
  EXPECT_FALSE(
      FairDensityEstimator::Fit(features, {0}, {1, -1}, config).ok());
}

// ------------------------------------------------ ClassDensityEstimator

TEST(ClassDensityTest, MarginalAndClassDensities) {
  Rng rng(13);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<ClassDensityEstimator> est =
      ClassDensityEstimator::Fit(features, labels, config);
  ASSERT_TRUE(est.ok());
  // Near class-1's center, class 1's density dominates.
  const std::vector<double> z = {4.0, 0.0};
  EXPECT_GT(est.value().LogClassDensity(z, 1),
            est.value().LogClassDensity(z, 0) + 2.0);
  EXPECT_TRUE(std::isfinite(est.value().LogMarginalDensity(z)));
}

TEST(ClassDensityTest, OodDetection) {
  Rng rng(14);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildPool({}, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<ClassDensityEstimator> est =
      ClassDensityEstimator::Fit(features, labels, config);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est.value().LogMarginalDensity({2.0, 0.0}),
            est.value().LogMarginalDensity({50.0, 50.0}) + 100.0);
}

TEST(ClassDensityTest, RejectsEmpty) {
  CovarianceConfig config;
  EXPECT_FALSE(ClassDensityEstimator::Fit(Matrix(0, 2), {}, config).ok());
}

}  // namespace
}  // namespace faction
