#include <cmath>
#include <set>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace faction {
namespace {

// Three well-separated blobs in 2-d, with a per-point sensitive value.
void MakeBlobs(std::size_t per_blob, Matrix* points,
               std::vector<int>* sensitive, Rng* rng,
               double group_skew = 0.5) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  points->Resize(per_blob * 3, 2);
  sensitive->clear();
  std::size_t row = 0;
  for (int b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      (*points)(row, 0) = rng->Gaussian(centers[b][0], 0.5);
      (*points)(row, 1) = rng->Gaussian(centers[b][1], 0.5);
      // Blob-dependent skew makes clusters naturally unbalanced.
      const double p = b == 0 ? group_skew : 1.0 - group_skew;
      sensitive->push_back(rng->Bernoulli(p) ? 1 : -1);
      ++row;
    }
  }
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  Rng rng(1);
  Matrix points;
  std::vector<int> sensitive;
  MakeBlobs(50, &points, &sensitive, &rng);
  KMeansConfig config;
  config.k = 3;
  const Result<Clustering> result = KMeans(points, config, &rng);
  ASSERT_TRUE(result.ok());
  // Every blob maps to a single cluster.
  for (int b = 0; b < 3; ++b) {
    std::set<std::size_t> ids;
    for (std::size_t i = 0; i < 50; ++i) {
      ids.insert(result.value().assignment[b * 50 + i]);
    }
    EXPECT_EQ(ids.size(), 1u) << "blob " << b << " split across clusters";
  }
  // And distinct blobs map to distinct clusters.
  std::set<std::size_t> all(result.value().assignment.begin(),
                            result.value().assignment.end());
  EXPECT_EQ(all.size(), 3u);
}

TEST(KMeansTest, InertiaBelowNaiveAssignment) {
  Rng rng(2);
  Matrix points;
  std::vector<int> sensitive;
  MakeBlobs(40, &points, &sensitive, &rng);
  KMeansConfig config;
  config.k = 3;
  const Result<Clustering> result = KMeans(points, config, &rng);
  ASSERT_TRUE(result.ok());
  // Inertia of a single global centroid is far larger.
  std::vector<double> centroid(2, 0.0);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    centroid[0] += points(i, 0) / points.rows();
    centroid[1] += points(i, 1) / points.rows();
  }
  double single = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    single += SquaredDistance(points.Row(i), centroid);
  }
  EXPECT_LT(result.value().inertia, single * 0.2);
}

TEST(KMeansTest, SizesSumToN) {
  Rng rng(3);
  Matrix points;
  std::vector<int> sensitive;
  MakeBlobs(30, &points, &sensitive, &rng);
  KMeansConfig config;
  config.k = 5;
  const Result<Clustering> result = KMeans(points, config, &rng);
  ASSERT_TRUE(result.ok());
  std::size_t total = 0;
  for (std::size_t s : result.value().sizes) total += s;
  EXPECT_EQ(total, 90u);
}

TEST(KMeansTest, KLargerThanNReduced) {
  Rng rng(4);
  Matrix points(3, 2);
  points(0, 0) = 0.0;
  points(1, 0) = 5.0;
  points(2, 0) = 10.0;
  KMeansConfig config;
  config.k = 10;
  const Result<Clustering> result = KMeans(points, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().centroids.rows(), 3u);
}

TEST(KMeansTest, RejectsDegenerateInputs) {
  Rng rng(5);
  KMeansConfig config;
  EXPECT_FALSE(KMeans(Matrix(0, 2), config, &rng).ok());
  config.k = 0;
  EXPECT_FALSE(KMeans(Matrix(5, 2), config, &rng).ok());
}

TEST(KMeansTest, SinglePointSingleCluster) {
  Rng rng(6);
  Matrix points(1, 3, 2.0);
  KMeansConfig config;
  config.k = 1;
  const Result<Clustering> result = KMeans(points, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().assignment[0], 0u);
  EXPECT_NEAR(result.value().inertia, 0.0, 1e-12);
}

TEST(ClusterRatiosTest, ComputedPerCluster) {
  Clustering clustering;
  clustering.centroids = Matrix(2, 1);
  clustering.assignment = {0, 0, 0, 1, 1};
  clustering.sizes = {3, 2};
  const std::vector<int> sensitive = {1, 1, -1, -1, -1};
  const std::vector<double> ratios =
      ClusterGroupRatios(clustering, sensitive);
  EXPECT_NEAR(ratios[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(ratios[1], 0.0, 1e-12);
}

TEST(FairKMeansTest, ImprovesWorstClusterBalance) {
  Rng rng(7);
  Matrix points;
  std::vector<int> sensitive;
  // Strong skew: blob 0 is 90% group +1, others 10%.
  MakeBlobs(60, &points, &sensitive, &rng, 0.9);
  KMeansConfig config;
  config.k = 3;
  double global = 0.0;
  for (int s : sensitive) global += s == 1 ? 1.0 : 0.0;
  global /= sensitive.size();

  Rng rng_plain(100), rng_fair(100);
  const Result<Clustering> plain = KMeans(points, config, &rng_plain);
  const Result<Clustering> fair =
      FairKMeans(points, sensitive, config, 0.1, &rng_fair);
  ASSERT_TRUE(plain.ok() && fair.ok());
  auto worst_gap = [&](const Clustering& c) {
    double worst = 0.0;
    for (double r : ClusterGroupRatios(c, sensitive)) {
      worst = std::max(worst, std::fabs(r - global));
    }
    return worst;
  };
  EXPECT_LT(worst_gap(fair.value()), worst_gap(plain.value()));
}

TEST(FairKMeansTest, SizesStayConsistentAfterRepair) {
  Rng rng(8);
  Matrix points;
  std::vector<int> sensitive;
  MakeBlobs(40, &points, &sensitive, &rng, 0.85);
  KMeansConfig config;
  config.k = 3;
  const Result<Clustering> fair =
      FairKMeans(points, sensitive, config, 0.05, &rng);
  ASSERT_TRUE(fair.ok());
  std::vector<std::size_t> counted(fair.value().centroids.rows(), 0);
  for (std::size_t c : fair.value().assignment) ++counted[c];
  EXPECT_EQ(counted, fair.value().sizes);
}

TEST(FairKMeansTest, RejectsMismatchedSensitive) {
  Rng rng(9);
  Matrix points(10, 2);
  KMeansConfig config;
  EXPECT_FALSE(FairKMeans(points, {1, -1}, config, 0.1, &rng).ok());
}

TEST(FairKMeansTest, AlreadyBalancedUntouched) {
  // Alternating groups everywhere: every cluster is balanced; the repair
  // step must not move anything (assignment equals plain k-means).
  Rng rng(10);
  Matrix points;
  std::vector<int> sensitive;
  MakeBlobs(40, &points, &sensitive, &rng, 0.5);
  for (std::size_t i = 0; i < sensitive.size(); ++i) {
    sensitive[i] = i % 2 == 0 ? 1 : -1;
  }
  KMeansConfig config;
  config.k = 3;
  Rng rng_plain(55), rng_fair(55);
  const Result<Clustering> plain = KMeans(points, config, &rng_plain);
  const Result<Clustering> fair =
      FairKMeans(points, sensitive, config, 0.1, &rng_fair);
  ASSERT_TRUE(plain.ok() && fair.ok());
  EXPECT_EQ(plain.value().assignment, fair.value().assignment);
}

}  // namespace
}  // namespace faction
