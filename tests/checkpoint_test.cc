// Checkpoint/state-streaming tests (DESIGN.md §17): bitwise
// capture/encode/decode/restore round trips for the full session state,
// kill-then-restore decision parity at any worker count, warm-start from a
// manifest, generation/rotation protocol, the never-stall skip path, the
// cross-shard sufficient-stats merge, and the standalone drift/bandit/
// disentangled codecs.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "baselines/bandit_strategy.h"
#include "baselines/disentangled_strategy.h"
#include "common/rng.h"
#include "core/streaming_faction.h"
#include "data/dataset.h"
#include "density/fair_density.h"
#include "serve/checkpoint.h"
#include "serve/job_system.h"
#include "serve/serve_runtime.h"
#include "serve/session.h"
#include "serve/state_codec.h"
#include "stream/drift.h"

namespace faction {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers (mirroring tests/serve_test.cc's replay harness).

StreamingFactionConfig SmallConfig(std::uint64_t seed) {
  StreamingFactionConfig config;
  config.model.input_dim = 6;
  config.model.hidden_dims = {8};
  config.model.num_classes = 2;
  config.train.epochs = 2;
  config.train.batch_size = 16;
  config.warm_start = 12;
  config.burn_in = 6;
  config.refit_interval = 20;
  config.seed = seed;
  return config;
}

// Sliding window + exponential decay: exercises the eviction ring and the
// forgetting-mode (ridge) Gaussian state in the codec.
StreamingFactionConfig WindowedConfig(std::uint64_t seed) {
  StreamingFactionConfig config = SmallConfig(seed);
  config.density_window = 48;
  config.density_decay = 0.99;
  return config;
}

std::vector<Example> MakeStream(std::size_t n, std::size_t dim,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    Example& ex = stream[i];
    ex.label = rng.Bernoulli(0.5) ? 1 : 0;
    ex.sensitive = rng.Bernoulli(0.5) ? 1 : -1;
    ex.environment = 0;
    ex.x.resize(dim);
    const double center = ex.label == 1 ? 1.5 : -1.5;
    const double shift = ex.sensitive == 1 ? 0.4 : -0.4;
    for (std::size_t d = 0; d < dim; ++d) {
      ex.x[d] = rng.Gaussian(center + shift, 1.0);
    }
  }
  return stream;
}

std::vector<std::uint64_t> ParamBits(const StreamingFaction& faction) {
  std::vector<std::uint64_t> bits;
  for (const Matrix* m : faction.model().Parameters()) {
    const std::size_t n = m->rows() * m->cols();
    const std::size_t base = bits.size();
    bits.resize(base + n);
    static_assert(sizeof(double) == sizeof(std::uint64_t), "");
    std::memcpy(bits.data() + base, m->data(), n * sizeof(double));
  }
  return bits;
}

// Folds stream[begin, end) into the learner, recording query decisions.
void RunStream(StreamingFaction* faction, const std::vector<Example>& stream,
               std::size_t begin, std::size_t end,
               std::vector<std::uint8_t>* decisions) {
  for (std::size_t i = begin; i < end; ++i) {
    const bool query = faction->ShouldQuery(stream[i]).value();
    if (query) {
      ASSERT_TRUE(faction->ProvideLabel(stream[i]).ok());
    }
    if (decisions != nullptr) decisions->push_back(query ? 1 : 0);
  }
}

// Fresh per-test scratch directory under /tmp (unique per test name and
// process so stale files from earlier runs cannot leak in).
std::string MakeScratchDir(const std::string& name) {
  const std::string dir = "/tmp/faction_ckpt_" + name + "_" +
                          std::to_string(static_cast<long long>(::getpid()));
  ::mkdir(dir.c_str(), 0755);
  // Clear anything a previous in-process test invocation left behind.
  for (int g = 0; g < 64; ++g) {
    for (int s = 0; s < 64; ++s) {
      std::remove((dir + "/session-" + std::to_string(s) + ".gen" +
                   std::to_string(g) + ".ckpt")
                      .c_str());
    }
  }
  std::remove((dir + "/manifest").c_str());
  return dir;
}

bool FileExists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

// ---------------------------------------------------------------------------
// Codec round trips.

class CheckpointCodecTest : public testing::TestWithParam<bool> {};

// Capture -> encode -> decode -> encode must be byte-identical: the text
// format loses nothing the codec captured (hexfloat doubles round-trip
// bit-for-bit, including -inf log-weights of zero-mass cells).
TEST_P(CheckpointCodecTest, EncodeDecodeEncodeIsByteIdentical) {
  const StreamingFactionConfig config =
      GetParam() ? WindowedConfig(11) : SmallConfig(11);
  StreamingFaction faction(config);
  const std::vector<Example> stream =
      MakeStream(100, config.model.input_dim, 2025);
  RunStream(&faction, stream, 0, 100, nullptr);

  SessionState state;
  CaptureSessionState(faction, &state);
  state.stream_id = 7;
  state.generation = 3;
  state.steps = 100;

  std::string first;
  EncodeSessionState(state, &first);
  ASSERT_FALSE(first.empty());

  std::istringstream is(first);
  SessionState decoded;
  const Status decode = DecodeSessionState(is, "roundtrip", &decoded);
  ASSERT_TRUE(decode.ok()) << decode.ToString();
  EXPECT_EQ(7u, decoded.stream_id);
  EXPECT_EQ(3u, decoded.generation);
  EXPECT_EQ(100u, decoded.steps);
  EXPECT_EQ(state.pool_size, decoded.pool_size);
  EXPECT_EQ(state.ring_size, decoded.ring_size);
  EXPECT_EQ(state.density.has_value, decoded.density.has_value);

  std::string second;
  EncodeSessionState(decoded, &second);
  EXPECT_EQ(first, second);
}

// The core guarantee: a learner restored from a checkpoint produces
// bitwise-identical future decisions and parameters to the uninterrupted
// learner.
TEST_P(CheckpointCodecTest, KillThenRestoreIsBitwiseIdentical) {
  const StreamingFactionConfig config =
      GetParam() ? WindowedConfig(21) : SmallConfig(21);
  const std::vector<Example> stream =
      MakeStream(140, config.model.input_dim, 404);

  StreamingFaction uninterrupted(config);
  std::vector<std::uint8_t> reference;
  RunStream(&uninterrupted, stream, 0, 140, &reference);

  StreamingFaction killed(config);
  std::vector<std::uint8_t> before;
  RunStream(&killed, stream, 0, 70, &before);

  // "Kill": serialize, forget the learner, decode, restore into a fresh
  // one built from the checkpointed config.
  SessionState state;
  CaptureSessionState(killed, &state);
  std::string encoded;
  EncodeSessionState(state, &encoded);
  std::istringstream is(encoded);
  SessionState decoded;
  ASSERT_TRUE(DecodeSessionState(is, "kill", &decoded).ok());

  StreamingFaction restored(decoded.config);
  const Status restore = RestoreSessionState(decoded, &restored);
  ASSERT_TRUE(restore.ok()) << restore.ToString();

  std::vector<std::uint8_t> after;
  RunStream(&restored, stream, 70, 140, &after);
  std::vector<std::uint8_t> tail(reference.begin() + 70, reference.end());
  EXPECT_EQ(tail, after);
  EXPECT_EQ(ParamBits(uninterrupted), ParamBits(restored));
  EXPECT_EQ(uninterrupted.queries_made(), restored.queries_made());
  EXPECT_EQ(uninterrupted.samples_seen(), restored.samples_seen());
  EXPECT_EQ(uninterrupted.pool_size(), restored.pool_size());
}

INSTANTIATE_TEST_SUITE_P(GrowOnlyAndWindowed, CheckpointCodecTest,
                         testing::Values(false, true));

TEST(CheckpointCodec, RestoreRejectsConfigMismatch) {
  StreamingFaction faction(SmallConfig(5));
  RunStream(&faction, MakeStream(40, 6, 9), 0, 40, nullptr);
  SessionState state;
  CaptureSessionState(faction, &state);

  StreamingFactionConfig other = SmallConfig(5);
  other.model.hidden_dims = {4};
  StreamingFaction wrong(other);
  EXPECT_FALSE(RestoreSessionState(state, &wrong).ok());
}

TEST(CheckpointCodec, DecodeErrorsNameSourceAndByteOffset) {
  StreamingFaction faction(SmallConfig(3));
  RunStream(&faction, MakeStream(30, 6, 5), 0, 30, nullptr);
  SessionState state;
  CaptureSessionState(faction, &state);
  std::string encoded;
  EncodeSessionState(state, &encoded);

  // Truncate mid-payload: the decode error must name the logical source
  // and the byte offset where parsing stopped.
  std::istringstream is(encoded.substr(0, encoded.size() / 2));
  SessionState out;
  const Status status = DecodeSessionState(is, "half.ckpt", &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string::npos, status.message().find("half.ckpt"))
      << status.ToString();
  EXPECT_NE(std::string::npos, status.message().find("@byte"))
      << status.ToString();

  const Status missing =
      DecodeSessionStateFromFile("/tmp/no_such_faction_ckpt.ckpt", &out);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(std::string::npos,
            missing.message().find("/tmp/no_such_faction_ckpt.ckpt"))
      << missing.ToString();
}

// ---------------------------------------------------------------------------
// Serve-layer checkpointing: background snapshots, manifest, warm-start.

TEST(CheckpointManager, SnapshotRotationAndGenerationResume) {
  const std::string dir = MakeScratchDir("rotate");
  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.interval_steps = 10;
  ckpt.keep_generations = 2;

  ServeRuntimeOptions runtime_options;
  runtime_options.workers = 0;  // inline: deterministic snapshot timing
  runtime_options.record_latency = false;
  const std::vector<Example> stream = MakeStream(60, 6, 77);
  {
    ServeRuntime runtime(runtime_options);
    runtime.EnableCheckpoints(ckpt);
    ServeSessionOptions options;
    options.stream_id = 4;
    options.faction = SmallConfig(31);
    options.mailbox_capacity = 64;
    ServeSession* session = runtime.CreateSession(options);
    for (std::size_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(runtime.Offer(session, stream[i]));
    }
    runtime.Drain();
    runtime.checkpoints()->Flush();
    EXPECT_EQ(0u, runtime.checkpoints()->failures());
  }

  // Snapshots fired at steps 10..50 -> generations 1..5; only the last
  // keep_generations files survive rotation.
  EXPECT_FALSE(FileExists(dir + "/session-4.gen3.ckpt"));
  EXPECT_TRUE(FileExists(dir + "/session-4.gen4.ckpt"));
  EXPECT_TRUE(FileExists(dir + "/session-4.gen5.ckpt"));

  Result<std::vector<CheckpointManifestEntry>> manifest =
      CheckpointManager::ReadManifest(dir + "/manifest");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(1u, manifest.value().size());
  EXPECT_EQ(4u, manifest.value()[0].stream_id);
  EXPECT_EQ(5u, manifest.value()[0].generation);
  EXPECT_EQ(50u, manifest.value()[0].steps);
  EXPECT_EQ("session-4.gen5.ckpt", manifest.value()[0].filename);

  // Warm-start resumes the generation sequence: the next snapshot commits
  // generation 6, not 1 (which would silently shadow rotation history).
  ServeRuntime runtime2(runtime_options);
  runtime2.EnableCheckpoints(ckpt);
  Result<WarmStartReport> report = runtime2.WarmStart(dir + "/manifest");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(1u, report.value().sessions);
  EXPECT_EQ(5u, report.value().max_generation);
  EXPECT_EQ(50u, report.value().total_steps);

  ServeSession* restored = runtime2.registry().Find(4);
  ASSERT_NE(nullptr, restored);
  EXPECT_EQ(50u, restored->steps());
  for (std::size_t i = 50; i < 60; ++i) {
    ASSERT_TRUE(runtime2.Offer(restored, stream[i]));
  }
  runtime2.Drain();
  runtime2.checkpoints()->Flush();
  EXPECT_TRUE(FileExists(dir + "/session-4.gen6.ckpt"));
  manifest = CheckpointManager::ReadManifest(dir + "/manifest");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(6u, manifest.value()[0].generation);
  EXPECT_EQ(60u, manifest.value()[0].steps);
}

// A session restored through the full serve path (checkpoint files +
// manifest + WarmStart) must continue with bitwise-identical decisions to
// the uninterrupted reference — at every worker count.
TEST(ServeWarmStart, KillThenRestoreDecisionParityAcrossWorkerCounts) {
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kHalf = 60;
  constexpr std::size_t kTotal = 120;
  const std::string dir = MakeScratchDir("warmstart");

  // Reference: uninterrupted standalone learners.
  std::vector<std::vector<std::uint8_t>> reference(kSessions);
  std::vector<std::vector<std::uint64_t>> reference_bits(kSessions);
  std::vector<std::vector<Example>> streams(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const StreamingFactionConfig config = SmallConfig(300 + s);
    streams[s] = MakeStream(kTotal, config.model.input_dim, 900 + s);
    StreamingFaction faction(config);
    RunStream(&faction, streams[s], 0, kTotal, &reference[s]);
    reference_bits[s] = ParamBits(faction);
  }

  // Phase 1: serve the first half with checkpointing on, snapshot every
  // session at exactly kHalf steps, then "kill" the runtime.
  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.interval_steps = 25;
  {
    ServeRuntimeOptions runtime_options;
    runtime_options.workers = 4;
    runtime_options.max_sessions = kSessions;
    runtime_options.record_latency = false;
    ServeRuntime runtime(runtime_options);
    runtime.EnableCheckpoints(ckpt);
    std::vector<ServeSession*> sessions;
    for (std::size_t s = 0; s < kSessions; ++s) {
      ServeSessionOptions options;
      options.stream_id = s;
      options.faction = SmallConfig(300 + s);
      options.mailbox_capacity = kHalf;
      sessions.push_back(runtime.CreateSession(options));
    }
    for (std::size_t i = 0; i < kHalf; ++i) {
      for (std::size_t s = 0; s < kSessions; ++s) {
        ASSERT_TRUE(runtime.Offer(sessions[s], streams[s][i]));
      }
    }
    runtime.Drain();
    // Interval snapshots fired mid-run at worker-timing-dependent steps;
    // pin the final generation at exactly kHalf steps (the test thread is
    // the sole holder once Drain returned).
    for (ServeSession* session : sessions) {
      ASSERT_EQ(kHalf, session->steps());
      EXPECT_TRUE(runtime.checkpoints()->SnapshotNow(session));
    }
    runtime.checkpoints()->Flush();
    EXPECT_EQ(0u, runtime.checkpoints()->failures());
  }

  // Phase 2: warm-start a fresh runtime from the manifest and serve the
  // second half — once inline, once on 4 workers.
  for (const int workers : {0, 4}) {
    ServeRuntimeOptions runtime_options;
    runtime_options.workers = workers;
    runtime_options.max_sessions = kSessions;
    runtime_options.record_latency = false;
    ServeRuntime runtime(runtime_options);
    WarmStartOptions warm;
    warm.mailbox_capacity = kTotal;
    warm.decision_log_capacity = kTotal;
    Result<WarmStartReport> report =
        runtime.WarmStart(dir + "/manifest", warm);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(kSessions, report.value().sessions);
    EXPECT_EQ(kSessions * kHalf, report.value().total_steps);

    for (std::size_t i = kHalf; i < kTotal; ++i) {
      for (std::size_t s = 0; s < kSessions; ++s) {
        ServeSession* session = runtime.registry().Find(s);
        ASSERT_NE(nullptr, session);
        ASSERT_TRUE(runtime.Offer(session, streams[s][i]));
      }
    }
    runtime.Drain();

    for (std::size_t s = 0; s < kSessions; ++s) {
      ServeSession* session = runtime.registry().Find(s);
      ASSERT_NE(nullptr, session);
      EXPECT_EQ(kTotal, session->steps()) << "workers " << workers;
      const std::vector<std::uint8_t> tail(reference[s].begin() + kHalf,
                                           reference[s].end());
      EXPECT_EQ(tail, session->decisions())
          << "session " << s << " workers " << workers;
      EXPECT_EQ(reference_bits[s], ParamBits(session->faction()))
          << "session " << s << " workers " << workers;
    }
  }
}

// Both buffers in serializer hands -> the snapshot is skipped, never
// stalled. (Statuses are forced by hand: the deterministic stand-in for a
// serializer backlog.)
TEST(CheckpointManager, SkipsWhenBothBuffersBusy) {
  const std::string dir = MakeScratchDir("busy");
  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.interval_steps = 1;
  ServeRuntimeOptions runtime_options;
  runtime_options.workers = 0;
  runtime_options.record_latency = false;
  ServeRuntime runtime(runtime_options);
  runtime.EnableCheckpoints(ckpt);
  ServeSessionOptions options;
  options.stream_id = 1;
  options.faction = SmallConfig(2);
  ServeSession* session = runtime.CreateSession(options);
  const std::vector<Example> stream = MakeStream(5, 6, 3);
  for (const Example& ex : stream) ASSERT_TRUE(runtime.Offer(session, ex));
  runtime.Drain();

  CheckpointSlot* slot = session->checkpoint_slot();
  ASSERT_NE(nullptr, slot);
  const std::uint64_t generation_before = slot->next_generation;
  slot->buffers[0].status.store(CheckpointBuffer::kQueued);
  slot->buffers[1].status.store(CheckpointBuffer::kQueued);
  EXPECT_FALSE(runtime.checkpoints()->SnapshotNow(session));
  EXPECT_EQ(generation_before, slot->next_generation);
  slot->buffers[0].status.store(CheckpointBuffer::kFree);
  slot->buffers[1].status.store(CheckpointBuffer::kFree);
  EXPECT_TRUE(runtime.checkpoints()->SnapshotNow(session));
  runtime.checkpoints()->Flush();
}

// Registry churn: session addresses and ids must stay stable across
// register/unregister cycles (node-stable storage — a drain job holds raw
// session pointers while other sessions come and go).
TEST(SessionRegistryChurn, PointersStableAcrossRegisterUnregisterCycles) {
  SessionRegistry registry;
  std::vector<ServeSession*> survivors;
  for (std::uint64_t id = 0; id < 32; ++id) {
    ServeSessionOptions options;
    options.stream_id = id;
    options.faction.model.input_dim = 4;
    options.faction.model.hidden_dims = {4};
    survivors.push_back(registry.Create(options));
  }
  // Each cycle evicts the previous cycle's churn cohort and registers a
  // fresh one under new ids; the original even-id sessions must stay
  // reachable at the same addresses throughout.
  std::vector<std::uint64_t> churn_ids;
  for (std::uint64_t id = 1; id < 32; id += 2) churn_ids.push_back(id);
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (std::uint64_t id : churn_ids) EXPECT_TRUE(registry.Erase(id));
    for (std::uint64_t id = 0; id < 32; id += 2) {
      ASSERT_EQ(survivors[id], registry.Find(id)) << "cycle " << cycle;
      EXPECT_EQ(id, registry.Find(id)->stream_id());
    }
    churn_ids.clear();
    for (std::uint64_t i = 0; i < 16; ++i) {
      const std::uint64_t id = 1000 + 100 * cycle + i;
      ServeSessionOptions options;
      options.stream_id = id;
      options.faction.model.input_dim = 4;
      options.faction.model.hidden_dims = {4};
      ASSERT_NE(nullptr, registry.Create(options));
      churn_ids.push_back(id);
    }
    for (std::uint64_t id = 0; id < 32; id += 2) {
      ASSERT_EQ(survivors[id], registry.Find(id)) << "cycle " << cycle;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-shard sufficient-stats merge.

// Density level: merging two half-fits must reproduce the union fit's
// sufficient statistics (counts exactly; densities to rounding).
TEST(MergeSufficientStats, DensityMergeMatchesUnionFit) {
  const std::size_t dim = 4;
  const std::size_t n = 240;
  Rng rng(9);
  Matrix features(n, dim);
  std::vector<int> labels(n), sensitive(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
    sensitive[i] = rng.Bernoulli(0.5) ? 1 : -1;
    for (std::size_t d = 0; d < dim; ++d) {
      features.row_data(i)[d] = rng.Gaussian(labels[i] * 2.0 - 1.0, 1.0);
    }
  }
  auto subset = [&](std::size_t begin, std::size_t end, Matrix* f,
                    std::vector<int>* l, std::vector<int>* s) {
    *f = Matrix(end - begin, dim);
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t d = 0; d < dim; ++d) {
        f->row_data(i - begin)[d] = features.row_data(i)[d];
      }
      l->push_back(labels[i]);
      s->push_back(sensitive[i]);
    }
  };
  CovarianceConfig config;
  Matrix f1, f2;
  std::vector<int> l1, s1, l2, s2;
  subset(0, n / 2, &f1, &l1, &s1);
  subset(n / 2, n, &f2, &l2, &s2);

  Result<FairDensityEstimator> shard1 =
      FairDensityEstimator::Fit(f1, l1, s1, config);
  Result<FairDensityEstimator> shard2 =
      FairDensityEstimator::Fit(f2, l2, s2, config);
  Result<FairDensityEstimator> union_fit =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(shard1.ok() && shard2.ok() && union_fit.ok());

  FairDensityEstimator merged = std::move(shard1.value());
  ASSERT_TRUE(merged.MergeFrom(shard2.value(), config).ok());
  EXPECT_EQ(union_fit.value().total_count(), merged.total_count());
  Rng probe_rng(123);
  for (int probe = 0; probe < 16; ++probe) {
    std::vector<double> z(dim);
    for (std::size_t d = 0; d < dim; ++d) z[d] = probe_rng.Gaussian(0, 1.5);
    EXPECT_NEAR(union_fit.value().LogMarginalDensity(z),
                merged.LogMarginalDensity(z), 1e-9);
  }
  for (int label = 0; label < 2; ++label) {
    for (int s : {-1, 1}) {
      EXPECT_NEAR(union_fit.value().Weight(label, s), merged.Weight(label, s),
                  1e-12);
    }
  }
}

// Pipeline level: shard session checkpoints on disk -> one global
// estimator, identical whether shards decode serially or on a job system.
TEST(MergeSufficientStats, FoldsShardCheckpointsFromDisk) {
  const std::string dir = MakeScratchDir("merge");
  const StreamingFactionConfig config = SmallConfig(61);
  std::vector<std::string> paths;
  std::size_t expected_total = 0;
  for (int shard = 0; shard < 3; ++shard) {
    StreamingFaction faction(config);
    RunStream(&faction, MakeStream(100, config.model.input_dim, 500 + shard), 0,
        100, nullptr);
    SessionState state;
    CaptureSessionState(faction, &state);
    ASSERT_TRUE(state.density.has_value) << "shard " << shard;
    expected_total += state.density.total;
    std::string encoded;
    EncodeSessionState(state, &encoded);
    const std::string path =
        dir + "/shard" + std::to_string(shard) + ".ckpt";
    std::ofstream os(path, std::ios::trunc);
    os << encoded;
    ASSERT_TRUE(os.good());
    paths.push_back(path);
  }

  Result<FairDensityEstimator> serial =
      MergeSufficientStats(paths, config.covariance);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(expected_total, serial.value().total_count());

  JobSystem::Options jobs_options;
  jobs_options.workers = 2;
  jobs_options.max_jobs = 8;
  JobSystem jobs(jobs_options);
  Result<FairDensityEstimator> parallel =
      MergeSufficientStats(paths, config.covariance, &jobs);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(expected_total, parallel.value().total_count());

  // Decode is pure and the fold is path-ordered in both modes, so the two
  // merged estimators agree bitwise.
  Rng probe_rng(31);
  const std::size_t d = serial.value().dim();
  for (int probe = 0; probe < 8; ++probe) {
    std::vector<double> z(d);
    for (std::size_t j = 0; j < d; ++j) z[j] = probe_rng.Gaussian(0, 1);
    EXPECT_EQ(serial.value().LogMarginalDensity(z),
              parallel.value().LogMarginalDensity(z));
  }

  EXPECT_FALSE(MergeSufficientStats({}, config.covariance).ok());
  EXPECT_FALSE(
      MergeSufficientStats({dir + "/absent.ckpt"}, config.covariance).ok());
}

// ---------------------------------------------------------------------------
// Standalone pipeline-state codecs.

TEST(PipelineStateCodec, DriftDetectorRoundTripPreservesBehavior) {
  DriftDetectorConfig config;
  config.threshold = 2.0;
  config.cooldown = 4;
  DriftDetector original(config);
  for (double v : {0.1, 0.12, 0.11, 0.13, 0.12, 5.0}) original.Observe(v);

  DriftDetectorState state;
  CaptureDriftDetectorState(original, &state);
  std::string encoded;
  EncodeDriftDetectorState(state, &encoded);
  std::istringstream is(encoded);
  DriftDetectorState decoded;
  ASSERT_TRUE(DecodeDriftDetectorState(is, "drift", &decoded).ok());
  EXPECT_EQ(state.n, decoded.n);
  EXPECT_EQ(state.cooldown_remaining, decoded.cooldown_remaining);

  DriftDetector restored(config);
  RestoreDriftDetectorState(decoded, &restored);
  EXPECT_EQ(original.history(), restored.history());
  EXPECT_EQ(original.mean(), restored.mean());
  EXPECT_EQ(original.cooldown_remaining(), restored.cooldown_remaining());
  // Future firings agree step for step (including the re-arm cooldown).
  for (double v : {0.1, 0.11, 9.0, 0.1, 0.1, 0.1, 0.1, 8.0}) {
    EXPECT_EQ(original.Observe(v), restored.Observe(v)) << "value " << v;
    EXPECT_EQ(original.cooldown_remaining(), restored.cooldown_remaining());
  }
}

TEST(PipelineStateCodec, BanditStateRoundTrip) {
  BanditState state;
  state.pulls = {3.25, 1.5};
  state.reward_sum = {0.875, -0.25};
  std::string encoded;
  EncodeBanditState(state, &encoded);
  std::istringstream is(encoded);
  BanditState decoded;
  ASSERT_TRUE(DecodeBanditState(is, "bandit", &decoded).ok());
  EXPECT_EQ(state.pulls, decoded.pulls);
  EXPECT_EQ(state.reward_sum, decoded.reward_sum);

  BanditConfig config;
  BanditStrategy strategy(config);
  RestoreBanditState(decoded, &strategy);
  EXPECT_EQ(3.25, strategy.arm_pulls(0));
  EXPECT_EQ(1.5, strategy.arm_pulls(1));
  BanditState recaptured;
  CaptureBanditState(strategy, &recaptured);
  EXPECT_EQ(state.pulls, recaptured.pulls);
  EXPECT_EQ(state.reward_sum, recaptured.reward_sum);
}

TEST(PipelineStateCodec, DisentangledStateRoundTrip) {
  DisentangledState state;
  state.global = {0.5, -0.25, 0.125};
  state.deltas[0] = {0.01, 0.02, 0.03};
  state.deltas[3] = {-0.5, 0.0, 0.25};
  std::string encoded;
  EncodeDisentangledState(state, &encoded);
  std::istringstream is(encoded);
  DisentangledState decoded;
  ASSERT_TRUE(DecodeDisentangledState(is, "disentangled", &decoded).ok());
  EXPECT_EQ(state.global, decoded.global);
  EXPECT_EQ(state.deltas, decoded.deltas);

  DisentangledConfig config;
  DisentangledStrategy strategy(config);
  RestoreDisentangledState(decoded, &strategy);
  EXPECT_EQ(2u, strategy.num_environment_deltas());
  DisentangledState recaptured;
  CaptureDisentangledState(strategy, &recaptured);
  EXPECT_EQ(state.global, recaptured.global);
  EXPECT_EQ(state.deltas, recaptured.deltas);
}

}  // namespace
}  // namespace faction
