#include "data/scenario.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/presets.h"
#include "data/streams.h"
#include "gtest/gtest.h"

namespace faction {
namespace {

// Bitwise matrix equality (no tolerance: the determinism contract is exact).
void ExpectSameMatrix(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << "row " << i << " col " << j;
    }
  }
}

void ExpectSameTask(const Dataset& a, const Dataset& b) {
  ExpectSameMatrix(a.features(), b.features());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.sensitive(), b.sensitive());
  EXPECT_EQ(a.environments(), b.environments());
}

// ------------------------------------------------------------------ SubSeed

TEST(SubSeedTest, GoldenValues) {
  // Pinned FNV-1a values: a change here silently re-seeds every stream, so
  // the constants are part of the reproducibility contract.
  EXPECT_EQ(SubSeed(0, ""), 1469598103934665603ULL);
  EXPECT_EQ(SubSeed(7, "rcmnist/prototypes"), 534959728108762854ULL);
  EXPECT_EQ(SubSeed(7, "rcmnist/env/0/task/0"), 8699483202193576342ULL);
}

TEST(SubSeedTest, TagAndSeedBothMatter) {
  EXPECT_NE(SubSeed(7, "a/b"), SubSeed(7, "a/c"));
  EXPECT_NE(SubSeed(7, "a/b"), SubSeed(8, "a/b"));
  EXPECT_EQ(SubSeed(7, "a/b"), SubSeed(7, "a/b"));
}

// ------------------------------------------------------- seed decoupling

TEST(SeedDecouplingTest, TasksPerEnvironmentDoesNotPerturbOtherTasks) {
  // Regression: generator draws used to flow through one shared RNG, so
  // adding a task to one environment re-seeded every later draw. With
  // per-task sub-seeds, the k-th task of environment e is bitwise identical
  // whether the plan holds 3 or 4 tasks per environment.
  RcmnistConfig three;
  three.scale.samples_per_task = 80;
  three.scale.seed = 21;
  three.tasks_per_environment = 3;
  RcmnistConfig four = three;
  four.tasks_per_environment = 4;
  const Result<std::vector<Dataset>> s3 = MakeRcmnistStream(three);
  const Result<std::vector<Dataset>> s4 = MakeRcmnistStream(four);
  ASSERT_TRUE(s3.ok());
  ASSERT_TRUE(s4.ok());
  const std::size_t envs = three.biases.size();
  ASSERT_EQ(s3.value().size(), envs * 3);
  ASSERT_EQ(s4.value().size(), envs * 4);
  for (std::size_t e = 0; e < envs; ++e) {
    for (std::size_t k = 0; k < 3; ++k) {
      ExpectSameTask(s3.value()[e * 3 + k], s4.value()[e * 4 + k]);
    }
  }
}

TEST(SeedDecouplingTest, EnvironmentPrototypesIgnorePlanShape) {
  RcmnistConfig three;
  three.scale.seed = 33;
  RcmnistConfig four = three;
  three.tasks_per_environment = 3;
  four.tasks_per_environment = 4;
  const Result<StreamBlueprint> b3 = MakeRcmnistBlueprint(three);
  const Result<StreamBlueprint> b4 = MakeRcmnistBlueprint(four);
  ASSERT_TRUE(b3.ok());
  ASSERT_TRUE(b4.ok());
  ASSERT_EQ(b3.value().environments.size(), b4.value().environments.size());
  for (std::size_t e = 0; e < b3.value().environments.size(); ++e) {
    EXPECT_EQ(b3.value().environments[e].class0_mean,
              b4.value().environments[e].class0_mean);
    EXPECT_EQ(b3.value().environments[e].class1_mean,
              b4.value().environments[e].class1_mean);
    EXPECT_EQ(b3.value().environments[e].group_offset,
              b4.value().environments[e].group_offset);
  }
}

// ----------------------------------------------------------- DSL parsing

TEST(ScenarioParseTest, DefaultsAndRoundTrip) {
  const Result<ScenarioConfig> parsed = ParseScenario("nysf");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().base, "nysf");
  EXPECT_EQ(parsed.value().drift, ScenarioConfig::DriftShape::kAbrupt);
  EXPECT_EQ(parsed.value().order, ScenarioConfig::TaskOrder::kPlan);
  EXPECT_DOUBLE_EQ(parsed.value().label_noise, 0.0);
  EXPECT_EQ(parsed.value().label_delay, 0u);
  EXPECT_EQ(CanonicalScenarioSpec(parsed.value()), "nysf");
}

TEST(ScenarioParseTest, FullSpecRoundTrip) {
  const std::string spec =
      "rcmnist;drift=recurring:3;order=adversarial;label_noise=0.05;"
      "label_delay=2;imbalance=0.3";
  const Result<ScenarioConfig> parsed = ParseScenario(spec);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().drift, ScenarioConfig::DriftShape::kRecurring);
  EXPECT_EQ(parsed.value().recurring_cycles, 3u);
  EXPECT_EQ(parsed.value().order, ScenarioConfig::TaskOrder::kAdversarial);
  EXPECT_DOUBLE_EQ(parsed.value().label_noise, 0.05);
  EXPECT_EQ(parsed.value().label_delay, 2u);
  EXPECT_DOUBLE_EQ(parsed.value().group_imbalance, 0.3);
  // Canonical form is layer-order-normalized and re-parses identically.
  const std::string canon = CanonicalScenarioSpec(parsed.value());
  EXPECT_EQ(canon, spec);
  const Result<ScenarioConfig> reparsed = ParseScenario(canon);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(CanonicalScenarioSpec(reparsed.value()), canon);
}

TEST(ScenarioParseTest, GradualDefaultsToOneStep) {
  const Result<ScenarioConfig> parsed = ParseScenario("ffhq;drift=gradual");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().gradual_steps, 1u);
  EXPECT_EQ(CanonicalScenarioSpec(parsed.value()), "ffhq;drift=gradual:1");
}

TEST(ScenarioParseTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                                // missing base
      "mnist",                           // unknown base
      "rcmnist;volume=11",               // unknown key
      "rcmnist;drift=sideways",          // unknown drift shape
      "rcmnist;drift=abrupt:3",          // abrupt takes no argument
      "rcmnist;drift=gradual:0",         // out of range
      "rcmnist;drift=recurring:17",      // out of range
      "rcmnist;order=chaotic",           // unknown order
      "rcmnist;label_noise=0.6",         // above 0.5
      "rcmnist;label_noise=abc",         // not a number
      "rcmnist;label_noise=0.1x",        // trailing junk
      "rcmnist;label_delay=-1",          // negative
      "rcmnist;imbalance=0.95",          // above 0.9
      "rcmnist;drift=abrupt;drift=gradual",  // duplicate key
      "rcmnist;order",                   // missing '='
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(ParseScenario(spec).ok()) << "accepted: " << spec;
  }
}

TEST(ScenarioParseTest, StationaryIsAValidBase) {
  EXPECT_TRUE(ParseScenario("stationary").ok());
}

TEST(ScenarioParseTest, PresetSpecsAllParse) {
  for (const std::string& spec : ScenarioPresetSpecs()) {
    EXPECT_TRUE(ParseScenario(spec).ok()) << spec;
  }
}

// -------------------------------------------------------- materialization

StreamScale SmallScale(std::uint64_t seed = 17) {
  StreamScale scale;
  scale.samples_per_task = 60;
  scale.seed = seed;
  return scale;
}

TEST(ScenarioStreamTest, WorldSeedReproducibility) {
  // Every cell of the matrix is reproducible bitwise from (spec, scale).
  for (const std::string& spec : ScenarioPresetSpecs()) {
    const Result<std::vector<Dataset>> a = MakeScenarioStream(spec,
                                                              SmallScale());
    const Result<std::vector<Dataset>> b = MakeScenarioStream(spec,
                                                              SmallScale());
    ASSERT_TRUE(a.ok()) << spec;
    ASSERT_TRUE(b.ok()) << spec;
    ASSERT_EQ(a.value().size(), b.value().size()) << spec;
    for (std::size_t t = 0; t < a.value().size(); ++t) {
      ExpectSameTask(a.value()[t], b.value()[t]);
    }
  }
}

TEST(ScenarioStreamTest, RecurringRepeatsThePlan) {
  const Result<std::vector<Dataset>> base =
      MakeScenarioStream("rcmnist", SmallScale());
  const Result<std::vector<Dataset>> rec =
      MakeScenarioStream("rcmnist;drift=recurring:2", SmallScale());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.value().size(), base.value().size() * 2);
  const std::size_t n = base.value().size();
  for (std::size_t t = 0; t < n; ++t) {
    // Cycle 1 is the base stream bit-for-bit; cycle 2 revisits the same
    // environments with fresh (occurrence-counter-seeded) draws.
    ExpectSameTask(rec.value()[t], base.value()[t]);
    EXPECT_EQ(rec.value()[n + t].environments(),
              base.value()[t].environments());
  }
}

TEST(ScenarioStreamTest, GradualInsertsTransitionTasks) {
  const Result<std::vector<Dataset>> base =
      MakeScenarioStream("rcmnist", SmallScale());
  const Result<std::vector<Dataset>> grad =
      MakeScenarioStream("rcmnist;drift=gradual:2", SmallScale());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(grad.ok());
  // 12 base tasks, 3 environment boundaries, 2 transition tasks each.
  EXPECT_EQ(base.value().size(), 12u);
  EXPECT_EQ(grad.value().size(), 18u);
  // Transition tasks attribute themselves to a real environment id.
  for (const Dataset& task : grad.value()) {
    for (const int env : task.environments()) {
      EXPECT_GE(env, 0);
      EXPECT_LT(env, 4);
    }
  }
}

TEST(ScenarioStreamTest, AdversarialOrderIsAPermutation) {
  const Result<StreamBlueprint> base =
      MakePaperBlueprint("fairface", SmallScale());
  ASSERT_TRUE(base.ok());
  const Result<ScenarioConfig> config =
      ParseScenario("fairface;order=adversarial");
  ASSERT_TRUE(config.ok());
  const Result<StreamBlueprint> adv =
      BuildScenarioBlueprint(config.value(), SmallScale());
  ASSERT_TRUE(adv.ok());
  ASSERT_EQ(adv.value().plan.size(), base.value().plan.size());
  std::vector<int> base_envs, adv_envs;
  for (const TaskPlan& tp : base.value().plan) {
    base_envs.push_back(tp.environment);
  }
  for (const TaskPlan& tp : adv.value().plan) {
    adv_envs.push_back(tp.environment);
  }
  std::vector<int> base_sorted = base_envs, adv_sorted = adv_envs;
  std::sort(base_sorted.begin(), base_sorted.end());
  std::sort(adv_sorted.begin(), adv_sorted.end());
  EXPECT_EQ(base_sorted, adv_sorted);  // permutation, nothing lost
  EXPECT_NE(base_envs, adv_envs);      // and actually reordered
  // The walk maximizes task-to-task change. The greedy tail can be forced
  // into same-environment repeats once only the current environment's
  // tasks remain, so compare adjacency counts instead of forbidding them:
  // the base env-major plan has 2 same-env adjacencies per block.
  auto same_adjacent = [](const std::vector<int>& envs) {
    std::size_t count = 0;
    for (std::size_t i = 1; i < envs.size(); ++i) {
      if (envs[i] == envs[i - 1]) ++count;
    }
    return count;
  };
  EXPECT_EQ(same_adjacent(base_envs), 14u);
  EXPECT_LT(same_adjacent(adv_envs), 4u);
}

TEST(ScenarioStreamTest, LabelNoiseKeepsFeaturesBitIdentical) {
  const Result<std::vector<Dataset>> clean =
      MakeScenarioStream("celeba", SmallScale());
  const Result<std::vector<Dataset>> noisy =
      MakeScenarioStream("celeba;label_noise=0.2", SmallScale());
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(clean.value().size(), noisy.value().size());
  std::size_t flipped = 0;
  for (std::size_t t = 0; t < clean.value().size(); ++t) {
    ExpectSameMatrix(clean.value()[t].features(),
                     noisy.value()[t].features());
    EXPECT_EQ(clean.value()[t].sensitive(), noisy.value()[t].sensitive());
    for (std::size_t i = 0; i < clean.value()[t].size(); ++i) {
      if (clean.value()[t].labels()[i] != noisy.value()[t].labels()[i]) {
        ++flipped;
      }
    }
  }
  // ~20% of all labels flip; far more than 0, far less than half.
  const std::size_t total =
      clean.value().size() * clean.value()[0].size();
  EXPECT_GT(flipped, total / 10);
  EXPECT_LT(flipped, total / 3);
}

TEST(ScenarioStreamTest, LabelDelayOnlyTouchesBoundaryTasks) {
  const Result<std::vector<Dataset>> base =
      MakeScenarioStream("rcmnist", SmallScale());
  const Result<std::vector<Dataset>> delayed =
      MakeScenarioStream("rcmnist;label_delay=1", SmallScale());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(delayed.ok());
  ASSERT_EQ(base.value().size(), delayed.value().size());
  for (std::size_t t = 0; t < base.value().size(); ++t) {
    // Recorded environment ids are unchanged — supervision lag must not
    // break per-environment attribution.
    EXPECT_EQ(base.value()[t].environments(),
              delayed.value()[t].environments());
    if (t % 3 != 0 || t == 0) {
      // Interior of an environment block: the lagged environment equals
      // the current one, so the task is bitwise untouched.
      ExpectSameTask(base.value()[t], delayed.value()[t]);
    }
  }
}

TEST(ScenarioStreamTest, ImbalanceSuppressesTheProtectedGroup) {
  const Result<std::vector<Dataset>> base =
      MakeScenarioStream("rcmnist", SmallScale());
  const Result<std::vector<Dataset>> skewed =
      MakeScenarioStream("rcmnist;imbalance=0.6", SmallScale());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(skewed.ok());
  double base_frac = 0.0, skewed_frac = 0.0;
  for (const Dataset& t : base.value()) base_frac += t.GroupFraction();
  for (const Dataset& t : skewed.value()) skewed_frac += t.GroupFraction();
  base_frac /= static_cast<double>(base.value().size());
  skewed_frac /= static_cast<double>(skewed.value().size());
  EXPECT_LT(skewed_frac, base_frac - 0.1);
  EXPECT_GT(skewed_frac, 0.0);
}

TEST(ScenarioStreamTest, PresetSpecsAllMaterialize) {
  StreamScale scale;
  scale.samples_per_task = 40;
  scale.seed = 5;
  for (const std::string& spec : ScenarioPresetSpecs()) {
    const Result<std::vector<Dataset>> stream =
        MakeScenarioStream(spec, scale);
    ASSERT_TRUE(stream.ok()) << spec << ": " << stream.status().ToString();
    EXPECT_FALSE(stream.value().empty()) << spec;
  }
}

// ------------------------------------------------- new strategies, smoke

ExperimentDefaults SmokeDefaults() {
  ExperimentDefaults defaults;
  defaults.budget_per_task = 40;
  defaults.acquisition_batch = 20;
  defaults.warm_start = 40;
  defaults.hidden_dims = {12, 6};
  defaults.epochs = 2;
  return defaults;
}

TEST(NewStrategyTest, BanditLearnsOnStationaryScenario) {
  StreamScale scale;
  scale.samples_per_task = 150;
  scale.seed = 11;
  const Result<std::vector<Dataset>> stream =
      MakeScenarioStream("stationary", scale);
  ASSERT_TRUE(stream.ok());
  const Result<RunResult> run =
      RunMethodOnStream("Bandit", stream.value(), SmokeDefaults(), 3);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run.value().per_task.back().accuracy, 0.6);
}

TEST(NewStrategyTest, DisentangledLearnsOnStationaryScenario) {
  StreamScale scale;
  scale.samples_per_task = 150;
  scale.seed = 11;
  const Result<std::vector<Dataset>> stream =
      MakeScenarioStream("stationary", scale);
  ASSERT_TRUE(stream.ok());
  const Result<RunResult> run =
      RunMethodOnStream("Disentangled", stream.value(), SmokeDefaults(), 3);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run.value().per_task.back().accuracy, 0.6);
}

TEST(NewStrategyTest, RunsAreDeterministic) {
  StreamScale scale;
  scale.samples_per_task = 100;
  scale.seed = 19;
  const Result<std::vector<Dataset>> stream =
      MakeScenarioStream("rcmnist;drift=recurring:2", scale);
  ASSERT_TRUE(stream.ok());
  for (const char* method : {"Bandit", "Disentangled"}) {
    const Result<RunResult> a =
        RunMethodOnStream(method, stream.value(), SmokeDefaults(), 9);
    const Result<RunResult> b =
        RunMethodOnStream(method, stream.value(), SmokeDefaults(), 9);
    ASSERT_TRUE(a.ok()) << method;
    ASSERT_TRUE(b.ok()) << method;
    ASSERT_EQ(a.value().per_task.size(), b.value().per_task.size());
    for (std::size_t t = 0; t < a.value().per_task.size(); ++t) {
      EXPECT_EQ(a.value().per_task[t].accuracy,
                b.value().per_task[t].accuracy)
          << method << " task " << t;
      EXPECT_EQ(a.value().per_task[t].queries_used,
                b.value().per_task[t].queries_used)
          << method << " task " << t;
    }
  }
}

TEST(NewStrategyTest, ExtendedMethodNamesAllConstruct) {
  const ExperimentDefaults defaults;
  for (const std::string& method : ExtendedMethodNames()) {
    EXPECT_TRUE(MakeStrategy(method, defaults).ok()) << method;
  }
}

}  // namespace
}  // namespace faction
