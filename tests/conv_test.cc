#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/presets.h"
#include "data/images.h"
#include "gtest/gtest.h"
#include "nn/conv.h"
#include "nn/conv_kernels.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "stream/online_learner.h"
#include "tensor/ops.h"

namespace faction {
namespace {

// ---------------------------------------------------------------- Conv2d

TEST(Conv2dTest, IdentityKernelPassesThrough) {
  Rng rng(1);
  const ImageShape shape{1, 4, 4};
  Conv2d conv(shape, 1, &rng);
  // Kernel = delta at the center, zero bias: output equals input.
  conv.weight()->Fill(0.0);
  (*conv.weight())(0, 4) = 1.0;  // center of the 3x3 kernel
  conv.bias()->Fill(0.0);
  Matrix x(2, 16);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  const Matrix y = conv.Forward(x);
  EXPECT_LT(MaxAbsDiff(x, y), 1e-12);
}

TEST(Conv2dTest, BiasAddsEverywhere) {
  Rng rng(2);
  const ImageShape shape{1, 4, 4};
  Conv2d conv(shape, 2, &rng);
  conv.weight()->Fill(0.0);
  (*conv.bias())(0, 0) = 1.5;
  (*conv.bias())(0, 1) = -0.5;
  Matrix x(1, 16, 0.0);
  const Matrix y = conv.Forward(x);
  ASSERT_EQ(y.cols(), 32u);
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_EQ(y(0, j), 1.5);
    EXPECT_EQ(y(0, 16 + j), -0.5);
  }
}

TEST(Conv2dTest, PaddingZerosOutsideBorder) {
  Rng rng(3);
  const ImageShape shape{1, 4, 4};
  Conv2d conv(shape, 1, &rng);
  // Kernel that picks the top-left neighbor.
  conv.weight()->Fill(0.0);
  (*conv.weight())(0, 0) = 1.0;
  conv.bias()->Fill(0.0);
  Matrix x(1, 16, 1.0);
  const Matrix y = conv.Forward(x);
  // At pixel (0,0) the top-left neighbor is padding: 0.
  EXPECT_EQ(y(0, 0), 0.0);
  // At interior pixel (1,1) it is x(0,0) = 1.
  EXPECT_EQ(y(0, 5), 1.0);
}

TEST(Conv2dTest, GradientCheck) {
  Rng rng(4);
  const ImageShape shape{2, 4, 4};
  Conv2d conv(shape, 2, &rng);
  Matrix x(2, shape.Flat());
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();

  auto loss_of = [&]() {
    const Matrix y = conv.ForwardInference(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      acc += y.data()[i] * y.data()[i];  // L = sum(y^2)
    }
    return 0.5 * acc;
  };
  conv.ZeroGrad();
  const Matrix y = conv.Forward(x);
  const Matrix dx = conv.Backward(y);  // dL/dy = y

  const double eps = 1e-6;
  // Spot-check weight gradients.
  for (std::size_t k = 0; k < conv.weight()->size(); k += 5) {
    const double orig = conv.weight()->data()[k];
    conv.weight()->data()[k] = orig + eps;
    const double up = loss_of();
    conv.weight()->data()[k] = orig - eps;
    const double down = loss_of();
    conv.weight()->data()[k] = orig;
    EXPECT_NEAR(conv.weight_grad()->data()[k], (up - down) / (2 * eps),
                1e-4)
        << "weight " << k;
  }
  // Spot-check input gradients numerically.
  for (std::size_t k = 0; k < x.size(); k += 7) {
    const double orig = x.data()[k];
    x.data()[k] = orig + eps;
    const double up = loss_of();
    x.data()[k] = orig - eps;
    const double down = loss_of();
    x.data()[k] = orig;
    EXPECT_NEAR(dx.data()[k], (up - down) / (2 * eps), 1e-4)
        << "input " << k;
  }
}

// -------------------------------------------------------------- MaxPool

TEST(MaxPoolTest, PicksBlockMaxima) {
  const ImageShape shape{1, 4, 4};
  MaxPool2d pool(shape);
  Matrix x(1, 16, 0.0);
  x(0, 0) = 5.0;   // block (0,0)
  x(0, 6) = 3.0;   // block (0,1): positions 2,3,6,7
  x(0, 9) = -1.0;  // block (1,0): all others 0 -> max 0
  x(0, 15) = 7.0;  // block (1,1)
  const Matrix y = pool.Forward(x);
  ASSERT_EQ(y.cols(), 4u);
  EXPECT_EQ(y(0, 0), 5.0);
  EXPECT_EQ(y(0, 1), 3.0);
  EXPECT_EQ(y(0, 2), 0.0);
  EXPECT_EQ(y(0, 3), 7.0);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  const ImageShape shape{1, 4, 4};
  MaxPool2d pool(shape);
  Matrix x(1, 16, 0.0);
  x(0, 5) = 9.0;  // block (0,0) argmax at flat index 5
  pool.Forward(x);
  Matrix dy(1, 4, 0.0);
  dy(0, 0) = 2.0;
  const Matrix dx = pool.Backward(dy);
  EXPECT_EQ(dx(0, 5), 2.0);
  double total = 0.0;
  for (std::size_t i = 0; i < dx.size(); ++i) total += std::fabs(dx.data()[i]);
  EXPECT_EQ(total, 2.0);
}

TEST(MaxPoolTest, InferenceMatchesForward) {
  Rng rng(5);
  const ImageShape shape{2, 4, 4};
  MaxPool2d pool(shape);
  Matrix x(3, shape.Flat());
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  EXPECT_LT(MaxAbsDiff(pool.Forward(x), pool.ForwardInference(x)), 1e-15);
}

// -------------------------------------------------------------- ConvNet

ConvNetConfig SmallConvConfig() {
  ConvNetConfig config;
  config.input = ImageShape{2, 8, 8};
  config.conv1_filters = 4;
  config.conv2_filters = 4;
  config.feature_dim = 8;
  return config;
}

TEST(ConvNetTest, ShapesAndInterface) {
  Rng rng(6);
  ConvNetClassifier net(SmallConvConfig(), &rng);
  EXPECT_EQ(net.input_dim(), 128u);
  EXPECT_EQ(net.feature_dim(), 8u);
  EXPECT_EQ(net.num_classes(), 2u);
  Matrix x(3, 128, 0.1);
  const Matrix logits = net.Forward(x);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 2u);
  EXPECT_LT(MaxAbsDiff(logits, net.Logits(x)), 1e-12);
  const Matrix z = net.ExtractFeatures(x);
  EXPECT_EQ(z.cols(), 8u);
  EXPECT_EQ(net.Parameters().size(), 8u);
}

TEST(ConvNetTest, FullGradientCheck) {
  Rng rng(7);
  ConvNetConfig config = SmallConvConfig();
  config.input = ImageShape{1, 4, 4};
  config.conv1_filters = 2;
  config.conv2_filters = 2;
  config.feature_dim = 4;
  ConvNetClassifier net(config, &rng);
  Matrix x(2, 16);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  const std::vector<int> labels = {0, 1};

  auto loss_of = [&]() { return SoftmaxNll(net.Logits(x), labels); };
  const Matrix logits = net.Forward(x);
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, labels, &dlogits);
  net.ZeroGrad();
  net.Backward(dlogits);

  const std::vector<Matrix*> params = net.Parameters();
  const std::vector<Matrix*> grads = net.Gradients();
  const double eps = 1e-6;
  for (std::size_t p = 0; p < params.size(); ++p) {
    const std::size_t stride =
        std::max<std::size_t>(1, params[p]->size() / 4);
    for (std::size_t k = 0; k < params[p]->size(); k += stride) {
      const double orig = params[p]->data()[k];
      params[p]->data()[k] = orig + eps;
      const double up = loss_of();
      params[p]->data()[k] = orig - eps;
      const double down = loss_of();
      params[p]->data()[k] = orig;
      EXPECT_NEAR(grads[p]->data()[k], (up - down) / (2 * eps), 2e-4)
          << "param " << p << " entry " << k;
    }
  }
}

TEST(ConvNetTest, CloneAndCopy) {
  Rng rng_a(8), rng_b(9);
  ConvNetClassifier a(SmallConvConfig(), &rng_a);
  std::unique_ptr<FeatureClassifier> b = a.CloneArchitecture(&rng_b);
  Matrix x(2, 128, 0.2);
  EXPECT_GT(MaxAbsDiff(a.Logits(x), b->Logits(x)), 1e-9);
  b->CopyParametersFrom(a);
  EXPECT_LT(MaxAbsDiff(a.Logits(x), b->Logits(x)), 1e-12);
}

TEST(ConvNetTest, LearnsColorChannelShortcut) {
  // Images whose class is encoded purely by which channel is lit: a CNN
  // must learn this quickly.
  Rng rng(10);
  ConvNetConfig config = SmallConvConfig();
  ConvNetClassifier net(config, &rng);
  const ImageShape shape = config.input;
  auto make_batch = [&](std::size_t n, Matrix* x, std::vector<int>* y) {
    x->Resize(n, shape.Flat());
    y->resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int label = rng.Bernoulli(0.5) ? 1 : 0;
      (*y)[i] = label;
      for (std::size_t j = 0; j < 64; ++j) {
        (*x)(i, label * 64 + j) = 1.0 + rng.Gaussian(0.0, 0.1);
        (*x)(i, (1 - label) * 64 + j) = rng.Gaussian(0.0, 0.1);
      }
    }
  };
  SgdOptimizer opt(0.05, 0.9);
  for (int step = 0; step < 60; ++step) {
    Matrix x;
    std::vector<int> y;
    make_batch(32, &x, &y);
    const Matrix logits = net.Forward(x);
    Matrix dlogits;
    SoftmaxCrossEntropy(logits, y, &dlogits);
    net.ZeroGrad();
    net.Backward(dlogits);
    opt.Step(net.Parameters(), net.Gradients());
  }
  Matrix x;
  std::vector<int> y;
  make_batch(200, &x, &y);
  const std::vector<int> pred = net.Predict(x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (pred[i] == y[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / 200.0, 0.95);
}

// --------------------------------------------------------- Image stream

TEST(ImageStreamTest, ShapesAndStructure) {
  RcmnistImageConfig config;
  config.scale.samples_per_task = 60;
  config.scale.seed = 5;
  const Result<std::vector<Dataset>> stream =
      MakeRcmnistImageStream(config);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream.value().size(), 12u);
  for (const Dataset& task : stream.value()) {
    EXPECT_EQ(task.dim(), 128u);
    EXPECT_EQ(task.size(), 60u);
  }
}

TEST(ImageStreamTest, ColorChannelMatchesSensitive) {
  RcmnistImageConfig config;
  config.scale.samples_per_task = 120;
  config.scale.seed = 6;
  config.pixel_noise = 0.0;
  const Result<std::vector<Dataset>> stream =
      MakeRcmnistImageStream(config);
  ASSERT_TRUE(stream.ok());
  const Dataset& task = stream.value()[0];
  for (std::size_t i = 0; i < task.size(); ++i) {
    double red = 0.0, green = 0.0;
    for (std::size_t j = 0; j < 64; ++j) {
      red += task.features()(i, j);
      green += task.features()(i, 64 + j);
    }
    if (task.sensitive()[i] == 1) {
      EXPECT_GT(red, green);
    } else {
      EXPECT_GT(green, red);
    }
  }
}

TEST(ImageStreamTest, BiasRealized) {
  RcmnistImageConfig config;
  config.scale.samples_per_task = 3000;
  config.scale.seed = 7;
  config.tasks_per_environment = 1;
  const Result<std::vector<Dataset>> stream =
      MakeRcmnistImageStream(config);
  ASSERT_TRUE(stream.ok());
  const Dataset& env0 = stream.value()[0];
  std::size_t n1 = 0, pos1 = 0;
  for (std::size_t i = 0; i < env0.size(); ++i) {
    if (env0.labels()[i] == 1) {
      ++n1;
      if (env0.sensitive()[i] == 1) ++pos1;
    }
  }
  EXPECT_NEAR(static_cast<double>(pos1) / n1, 0.9, 0.03);
}

TEST(ImageStreamTest, RotationMovesPixels) {
  Rng rng(8);
  const ImageShape shape{2, 8, 8};
  const auto stencils = MakeDigitStencils(1, shape, 14, &rng);
  const std::vector<double> base =
      RenderDigitImage(stencils[0], shape, 0, 0.0, 0.0, &rng);
  const std::vector<double> rotated =
      RenderDigitImage(stencils[0], shape, 0, 45.0, 0.0, &rng);
  double diff = 0.0, mass_base = 0.0, mass_rot = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    diff += std::fabs(base[i] - rotated[i]);
    mass_base += base[i];
    mass_rot += rotated[i];
  }
  EXPECT_GT(diff, 1.0);          // the glyph moved
  EXPECT_GT(mass_rot, 2.0);      // but did not vanish
  EXPECT_GT(mass_base, 2.0);
}

TEST(ImageStreamTest, ValidationErrors) {
  RcmnistImageConfig config;
  config.biases = {0.9};
  config.rotations_deg = {0.0, 15.0};
  EXPECT_FALSE(MakeRcmnistImageStream(config).ok());
  RcmnistImageConfig mono;
  mono.shape = ImageShape{1, 8, 8};
  EXPECT_FALSE(MakeRcmnistImageStream(mono).ok());
}

// --------------------------------------- CNN backbone on the image stream

TEST(ConvNetIntegrationTest, FactionWithCnnBackbone) {
  RcmnistImageConfig stream_config;
  stream_config.scale.samples_per_task = 90;
  stream_config.scale.seed = 9;
  stream_config.biases = {0.8, 0.7};
  stream_config.rotations_deg = {0.0, 30.0};
  stream_config.tasks_per_environment = 1;
  const Result<std::vector<Dataset>> stream =
      MakeRcmnistImageStream(stream_config);
  ASSERT_TRUE(stream.ok());

  ExperimentDefaults defaults;
  defaults.budget_per_task = 30;
  defaults.acquisition_batch = 15;
  defaults.warm_start = 30;
  defaults.epochs = 2;
  Result<std::unique_ptr<QueryStrategy>> strategy =
      MakeStrategy("FACTION", defaults);
  ASSERT_TRUE(strategy.ok());
  OnlineLearnerConfig config =
      MakeLearnerConfig(defaults, 128, "FACTION", 11);
  config.model_factory = [](Rng* rng) {
    ConvNetConfig net;
    net.input = ImageShape{2, 8, 8};
    net.conv1_filters = 4;
    net.conv2_filters = 4;
    net.feature_dim = 8;
    return std::unique_ptr<FeatureClassifier>(
        std::make_unique<ConvNetClassifier>(net, rng));
  };
  OnlineLearner learner(config, strategy.value().get());
  const Result<RunResult> run = learner.Run(stream.value());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().per_task.size(), 2u);
  for (const TaskMetrics& m : run.value().per_task) {
    EXPECT_GE(m.accuracy, 0.0);
    EXPECT_LE(m.accuracy, 1.0);
  }
}


// ------------------------------------------------- GEMM lowering parity

struct GeometryCase {
  std::size_t ic, h, w, k, stride, pad, oc;
};

// Odd shapes, strides, paddings, and channel counts; first entry is the
// exact Conv2d configuration.
constexpr GeometryCase kGeometryCases[] = {
    {1, 4, 4, 3, 1, 1, 2}, {3, 7, 5, 3, 2, 1, 4}, {2, 5, 9, 5, 2, 2, 3},
    {1, 1, 8, 1, 1, 0, 2}, {2, 6, 6, 3, 3, 0, 1}, {1, 3, 3, 3, 1, 2, 2},
};

ConvGeometry MakeGeometry(const GeometryCase& c) {
  ConvGeometry g;
  g.in_channels = c.ic;
  g.height = c.h;
  g.width = c.w;
  g.kernel = c.k;
  g.stride = c.stride;
  g.pad = c.pad;
  return g;
}

TEST(ConvKernelsTest, GemmForwardMatchesNaiveBitwise) {
  Rng rng(77);
  for (const GeometryCase& c : kGeometryCases) {
    const ConvGeometry g = MakeGeometry(c);
    ASSERT_TRUE(g.Valid());
    std::vector<double> x(g.InFlat()), w(c.oc * g.PatchSize()), bias(c.oc);
    for (double& v : x) v = rng.Gaussian();
    for (double& v : w) v = rng.Gaussian();
    for (double& v : bias) v = rng.Gaussian();
    const std::size_t ysz = c.oc * g.OutPositions();
    std::vector<double> y_naive(ysz), y_gemm(ysz);
    ConvScratch scratch;
    NaiveConvForward(g, c.oc, x.data(), w.data(), bias.data(),
                     y_naive.data());
    GemmConvForward(g, c.oc, x.data(), w.data(), bias.data(), y_gemm.data(),
                    &scratch);
    for (std::size_t i = 0; i < ysz; ++i) {
      ASSERT_EQ(y_naive[i], y_gemm[i])
          << "geometry " << c.h << "x" << c.w << " k=" << c.k
          << " s=" << c.stride << " p=" << c.pad << " output " << i;
    }
  }
}

TEST(ConvKernelsTest, GemmBackwardMatchesNaiveBitwise) {
  Rng rng(78);
  for (const GeometryCase& c : kGeometryCases) {
    const ConvGeometry g = MakeGeometry(c);
    std::vector<double> x(g.InFlat()), w(c.oc * g.PatchSize());
    for (double& v : x) v = rng.Gaussian();
    for (double& v : w) v = rng.Gaussian();
    const std::size_t ysz = c.oc * g.OutPositions();
    // Zeros sprinkled into dy exercise the sparse-gradient skip both paths
    // share (post-ReLU gradients are mostly zero in practice).
    std::vector<double> dy(ysz);
    for (std::size_t i = 0; i < ysz; ++i) {
      dy[i] = i % 3 == 0 ? 0.0 : rng.Gaussian();
    }
    std::vector<double> dx_naive(g.InFlat()), dx_gemm(g.InFlat());
    std::vector<double> gw_naive(w.size(), 0.0), gw_gemm(w.size(), 0.0);
    std::vector<double> gb_naive(c.oc, 0.0), gb_gemm(c.oc, 0.0);
    ConvScratch scratch;
    NaiveConvBackward(g, c.oc, x.data(), w.data(), dy.data(),
                      dx_naive.data(), gw_naive.data(), gb_naive.data());
    GemmConvBackward(g, c.oc, x.data(), w.data(), dy.data(), dx_gemm.data(),
                     gw_gemm.data(), gb_gemm.data(), &scratch);
    for (std::size_t i = 0; i < dx_naive.size(); ++i) {
      ASSERT_EQ(dx_naive[i], dx_gemm[i]) << "dx element " << i;
    }
    for (std::size_t i = 0; i < gw_naive.size(); ++i) {
      ASSERT_EQ(gw_naive[i], gw_gemm[i]) << "gw element " << i;
    }
    for (std::size_t i = 0; i < gb_naive.size(); ++i) {
      ASSERT_EQ(gb_naive[i], gb_gemm[i]) << "gb element " << i;
    }
  }
}

TEST(ConvKernelsTest, Im2ColRowsIsTransposeOfIm2Col) {
  Rng rng(79);
  for (const GeometryCase& c : kGeometryCases) {
    const ConvGeometry g = MakeGeometry(c);
    std::vector<double> img(g.InFlat());
    for (double& v : img) v = rng.Gaussian();
    std::vector<double> col(g.PatchSize() * g.OutPositions());
    std::vector<double> rows(col.size());
    Im2Col(img.data(), g, col.data());
    Im2ColRows(img.data(), g, rows.data());
    for (std::size_t k = 0; k < g.PatchSize(); ++k) {
      for (std::size_t o = 0; o < g.OutPositions(); ++o) {
        ASSERT_EQ(col[k * g.OutPositions() + o],
                  rows[o * g.PatchSize() + k])
            << "k=" << k << " o=" << o;
      }
    }
  }
}

TEST(ConvKernelsTest, Col2ImIsAdjointOfIm2Col) {
  // <Im2Col(x), c> == <x, Col2Im(c)>: the defining identity of an adjoint
  // gather/scatter pair. Exact up to summation order, so compare with a
  // tight relative tolerance.
  Rng rng(80);
  for (const GeometryCase& c : kGeometryCases) {
    const ConvGeometry g = MakeGeometry(c);
    std::vector<double> x(g.InFlat());
    std::vector<double> coef(g.PatchSize() * g.OutPositions());
    for (double& v : x) v = rng.Gaussian();
    for (double& v : coef) v = rng.Gaussian();
    std::vector<double> col(coef.size());
    Im2Col(x.data(), g, col.data());
    std::vector<double> img(g.InFlat());
    Col2Im(coef.data(), g, img.data());
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < col.size(); ++i) lhs += col[i] * coef[i];
    for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * img[i];
    EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + std::fabs(lhs)));
  }
}

TEST(Conv2dTest, ForwardMatchesApplyNaiveBitwise) {
  Rng rng(81);
  const ImageShape shape{2, 5, 5};
  Conv2d conv(shape, 3, &rng);
  Matrix x(7, shape.Flat());
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  const Matrix gemm = conv.Forward(x);
  const Matrix naive = conv.ApplyNaive(x);
  ASSERT_EQ(gemm.rows(), naive.rows());
  ASSERT_EQ(gemm.cols(), naive.cols());
  EXPECT_EQ(MaxAbsDiff(gemm, naive), 0.0);
}

}  // namespace
}  // namespace faction
