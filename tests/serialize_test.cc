// Serializer v2 guarantees: bitwise-exact hexfloat round-trips (including
// denormals and signed zeros), rejection of non-finite parameters before a
// byte is written, legacy v1 (decimal) payloads still loading, and the
// crash-safe file save that never clobbers a good checkpoint.
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "gtest/gtest.h"

#include "common/fsio.h"
#include "nn/serialize.h"

namespace faction {
namespace {

MlpClassifier MakeModel(std::uint64_t seed) {
  MlpConfig config;
  config.input_dim = 5;
  config.hidden_dims = {7};
  config.spectral.enabled = true;
  config.spectral.coeff = 2.5;
  Rng rng(seed);
  return MlpClassifier(config, &rng);
}

std::uint64_t Bits(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

bool FileExists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

TEST(SerializeV2Test, HexfloatRoundTripIsBitwiseExact) {
  MlpClassifier model = MakeModel(1);
  // Plant adversarial values a decimal printer could mangle: the smallest
  // denormal, DBL_MAX, a negative zero, and values with long fractions.
  const std::vector<Matrix*> params = model.Parameters();
  ASSERT_FALSE(params.empty());
  Matrix& w = *params[0];
  ASSERT_GE(w.size(), 6u);
  w.data()[0] = 4.9406564584124654e-324;  // min denormal
  w.data()[1] = DBL_MAX;
  w.data()[2] = -0.0;
  w.data()[3] = 1.0 / 3.0;
  w.data()[4] = DBL_MIN;
  w.data()[5] = -2.2250738585072014e-308;

  std::stringstream ss;
  ASSERT_TRUE(SaveModel(model, ss).ok());
  Result<MlpClassifier> loaded = LoadModel(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const MlpClassifier& reloaded = loaded.value();
  const std::vector<const Matrix*> orig =
      static_cast<const MlpClassifier&>(model).Parameters();
  const std::vector<const Matrix*> back =
      static_cast<const MlpClassifier&>(reloaded).Parameters();
  ASSERT_EQ(orig.size(), back.size());
  for (std::size_t t = 0; t < orig.size(); ++t) {
    ASSERT_EQ(orig[t]->size(), back[t]->size());
    for (std::size_t i = 0; i < orig[t]->size(); ++i) {
      EXPECT_EQ(Bits(orig[t]->data()[i]), Bits(back[t]->data()[i]))
          << "tensor " << t << " element " << i;
    }
  }
}

TEST(SerializeV2Test, SaveRejectsNonFiniteParameters) {
  for (const double poison : {std::nan(""),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()}) {
    MlpClassifier model = MakeModel(2);
    model.Parameters()[1]->data()[0] = poison;
    std::stringstream ss;
    const Status saved = SaveModel(model, ss);
    EXPECT_EQ(saved.code(), StatusCode::kNumericalError)
        << saved.ToString();
    EXPECT_NE(saved.message().find("non-finite"), std::string::npos);
    // Nothing was written: the failure happens before the header.
    EXPECT_TRUE(ss.str().empty());
  }
}

TEST(SerializeV2Test, LegacyV1DecimalPayloadStillLoads) {
  // A v1 checkpoint written by the old decimal serializer: a linear model
  // (empty hidden line) with hand-picked weights.
  const std::string v1 =
      "faction-mlp v1\n"
      "input_dim 2\n"
      "num_classes 2\n"
      "hidden\n"
      "spectral 0 1 1\n"
      "tensors 2\n"
      "2 2 0.25 -0.5 1.5 2.2999999999999998\n"
      "1 2 0.125 -1\n";
  std::istringstream is(v1);
  Result<MlpClassifier> loaded = LoadModel(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<const Matrix*> params =
      static_cast<const MlpClassifier&>(loaded.value()).Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->data()[0], 0.25);
  EXPECT_EQ(params[0]->data()[1], -0.5);
  // max_digits10 decimal round-trips exactly: 2.2999999999999998 is 2.3.
  EXPECT_EQ(Bits(params[0]->data()[3]), Bits(2.3));
  EXPECT_EQ(params[1]->data()[1], -1.0);
  EXPECT_FALSE(loaded.value().config().spectral.enabled);
}

TEST(SerializeV2Test, LoadRejectsNonFiniteTensorValues) {
  const std::string bad =
      "faction-mlp v1\n"
      "input_dim 2\n"
      "num_classes 2\n"
      "hidden\n"
      "spectral 0 1 1\n"
      "tensors 2\n"
      "2 2 0.25 nan 1.5 2.0\n"
      "1 2 0.125 -1\n";
  std::istringstream is(bad);
  const Result<MlpClassifier> loaded = LoadModel(is);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("non-finite"), std::string::npos);
}

TEST(SerializeV2Test, LoadRejectsMalformedTokens) {
  const std::string bad =
      "faction-mlp v2\n"
      "input_dim 2\n"
      "num_classes 2\n"
      "hidden\n"
      "spectral 0 1 1\n"
      "tensors 2\n"
      "2 2 0.25 0.5xyz 1.5 2.0\n"
      "1 2 0.125 -1\n";
  std::istringstream is(bad);
  EXPECT_FALSE(LoadModel(is).ok());
}

TEST(SerializeV2Test, FailedSaveLeavesPriorCheckpointIntact) {
  const std::string path = "/tmp/faction_serialize_crash_safe.model";
  std::remove(path.c_str());
  MlpClassifier good = MakeModel(3);
  ASSERT_TRUE(SaveModelToFile(good, path).ok());

  // A later save of a corrupted model fails...
  MlpClassifier poisoned = MakeModel(4);
  poisoned.Parameters()[0]->data()[0] = std::nan("");
  const Status failed = SaveModelToFile(poisoned, path);
  EXPECT_EQ(failed.code(), StatusCode::kNumericalError);

  // ...but the original checkpoint still loads, bit-for-bit, and no temp
  // file is left behind.
  Result<MlpClassifier> reloaded = LoadModelFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const std::vector<const Matrix*> orig =
      static_cast<const MlpClassifier&>(good).Parameters();
  const std::vector<const Matrix*> back =
      static_cast<const MlpClassifier&>(reloaded.value()).Parameters();
  ASSERT_EQ(orig.size(), back.size());
  for (std::size_t t = 0; t < orig.size(); ++t) {
    for (std::size_t i = 0; i < orig[t]->size(); ++i) {
      EXPECT_EQ(Bits(orig[t]->data()[i]), Bits(back[t]->data()[i]));
    }
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

// Regression: SaveModelToFile used to rename without any fsync, so a
// power loss could persist the rename before the data blocks — a
// correctly-named torn checkpoint. A durable save issues (at least) the
// tmp-file fsync and the parent-directory fsync.
TEST(SerializeV2Test, SaveToFileFsyncsBeforeRename) {
  const std::string path = "/tmp/faction_serialize_fsync.model";
  std::remove(path.c_str());
  MlpClassifier model = MakeModel(7);

  const std::uint64_t fsyncs_before = FsyncCallsForTest();
  ASSERT_TRUE(SaveModelToFile(model, path).ok());
  EXPECT_GE(FsyncCallsForTest(), fsyncs_before + 2)
      << "durable save must fsync the tmp file and the parent directory";

  // The FACTION_NO_FSYNC escape hatch (bulk runs) skips the fsyncs but
  // keeps the atomic tmp+rename.
  ::setenv("FACTION_NO_FSYNC", "1", 1);
  const std::uint64_t fsyncs_mid = FsyncCallsForTest();
  ASSERT_TRUE(SaveModelToFile(model, path).ok());
  EXPECT_EQ(fsyncs_mid, FsyncCallsForTest());
  ::unsetenv("FACTION_NO_FSYNC");

  EXPECT_TRUE(LoadModelFromFile(path).ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

// Load errors must name the failing file and the byte offset where the
// parse stopped, so a truncated checkpoint points at its own damage.
TEST(SerializeV2Test, LoadErrorsNameSourceAndByteOffset) {
  const std::string path = "/tmp/faction_serialize_truncated.model";
  MlpClassifier model = MakeModel(8);
  std::ostringstream os;
  ASSERT_TRUE(SaveModel(model, os).ok());
  const std::string full = os.str();
  {
    std::ofstream f(path, std::ios::trunc);
    f << full.substr(0, full.size() / 2);
  }
  Result<MlpClassifier> loaded = LoadModelFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(std::string::npos, loaded.status().message().find(path))
      << loaded.status().ToString();
  EXPECT_NE(std::string::npos, loaded.status().message().find("@byte"))
      << loaded.status().ToString();
  std::remove(path.c_str());

  // Streams loaded without a source label still report the offset.
  std::istringstream is(full.substr(0, full.size() / 2));
  Result<MlpClassifier> unnamed = LoadModel(is);
  ASSERT_FALSE(unnamed.ok());
  EXPECT_NE(std::string::npos, unnamed.status().message().find("@byte"))
      << unnamed.status().ToString();
}

TEST(SerializeV2Test, SaveToUnopenablePathFails) {
  MlpClassifier model = MakeModel(5);
  const Status saved =
      SaveModelToFile(model, "/tmp/no_such_dir_faction/x.model");
  EXPECT_EQ(saved.code(), StatusCode::kNotFound);
}

TEST(SerializeV2Test, ConstParametersMatchMutableParameters) {
  MlpClassifier model = MakeModel(6);
  const std::vector<Matrix*> mut = model.Parameters();
  const std::vector<const Matrix*> cons =
      static_cast<const MlpClassifier&>(model).Parameters();
  ASSERT_EQ(mut.size(), cons.size());
  for (std::size_t i = 0; i < mut.size(); ++i) {
    EXPECT_EQ(static_cast<const Matrix*>(mut[i]), cons[i]);
  }
}

}  // namespace
}  // namespace faction
