#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace faction {
namespace {

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FALSE(m.empty());
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 3.5);
  EXPECT_EQ(m(0, 0), 3.5);
  EXPECT_EQ(m(1, 1), 3.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
}

TEST(MatrixTest, RowAccessors) {
  Matrix m = {{1, 2}, {3, 4}};
  const std::vector<double> r1 = m.Row(1);
  EXPECT_EQ(r1, (std::vector<double>{3, 4}));
  m.SetRow(0, {9, 8});
  EXPECT_EQ(m(0, 0), 9.0);
  EXPECT_EQ(m(0, 1), 8.0);
}

TEST(MatrixTest, IdentityAndFromRowVector) {
  const Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  EXPECT_EQ(id(2, 2), 1.0);
  const Matrix rv = Matrix::FromRowVector({1, 2, 3});
  EXPECT_EQ(rv.rows(), 1u);
  EXPECT_EQ(rv.cols(), 3u);
  EXPECT_EQ(rv(0, 1), 2.0);
}

TEST(MatrixTest, FillAndResize) {
  Matrix m(2, 2, 7.0);
  m.Fill(1.0);
  EXPECT_EQ(m(1, 1), 1.0);
  m.Resize(3, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_EQ(m(2, 0), 0.0);
}

TEST(OpsTest, MatMulBasic) {
  const Matrix a = {{1, 2}, {3, 4}};
  const Matrix b = {{5, 6}, {7, 8}};
  const Matrix c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(OpsTest, MatMulIdentity) {
  Rng rng(3);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Gaussian();
  const Matrix c = MatMul(a, Matrix::Identity(4));
  EXPECT_LT(MaxAbsDiff(a, c), 1e-12);
}

TEST(OpsTest, MatMulBtMatchesExplicitTranspose) {
  Rng rng(5);
  Matrix a(3, 5), b(4, 5);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Gaussian();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Gaussian();
  const Matrix expect = MatMul(a, Transpose(b));
  EXPECT_LT(MaxAbsDiff(MatMulBt(a, b), expect), 1e-12);
}

TEST(OpsTest, MatMulAtMatchesExplicitTranspose) {
  Rng rng(7);
  Matrix a(6, 3), b(6, 2);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Gaussian();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Gaussian();
  const Matrix expect = MatMul(Transpose(a), b);
  EXPECT_LT(MaxAbsDiff(MatMulAt(a, b), expect), 1e-12);
}

TEST(OpsTest, TransposeInvolution) {
  Rng rng(9);
  Matrix a(3, 7);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Gaussian();
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(a)), a), 1e-15);
}

TEST(OpsTest, AddSubHadamardScale) {
  const Matrix a = {{1, 2}, {3, 4}};
  const Matrix b = {{10, 20}, {30, 40}};
  EXPECT_EQ(Add(a, b)(1, 1), 44.0);
  EXPECT_EQ(Sub(b, a)(0, 0), 9.0);
  EXPECT_EQ(Hadamard(a, b)(1, 0), 90.0);
  EXPECT_EQ(Scale(a, 2.0)(0, 1), 4.0);
}

TEST(OpsTest, AddScaledAxpy) {
  Matrix a = {{1, 1}};
  const Matrix b = {{2, 3}};
  AddScaled(&a, b, 0.5);
  EXPECT_EQ(a(0, 0), 2.0);
  EXPECT_EQ(a(0, 1), 2.5);
}

TEST(OpsTest, AddRowBroadcast) {
  Matrix m = {{1, 2}, {3, 4}};
  AddRowBroadcast(&m, {10, 20});
  EXPECT_EQ(m(0, 0), 11.0);
  EXPECT_EQ(m(1, 1), 24.0);
}

TEST(OpsTest, SumsAndNorms) {
  const Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(ColSums(m), (std::vector<double>{4, 6}));
  EXPECT_EQ(RowSums(m), (std::vector<double>{3, 7}));
  EXPECT_EQ(FrobeniusNorm2(m), 30.0);
}

TEST(OpsTest, VectorHelpers) {
  EXPECT_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_NEAR(Norm2({3, 4}), 5.0, 1e-12);
  EXPECT_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  const Matrix logits = {{1, 2, 3}, {-5, 0, 5}};
  const Matrix p = SoftmaxRows(logits);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GT(p(i, j), 0.0);
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(p(0, 2), p(0, 0));
}

TEST(OpsTest, SoftmaxNumericallyStable) {
  const Matrix logits = {{1000, 1001}};
  const Matrix p = SoftmaxRows(logits);
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);
  EXPECT_GT(p(0, 1), p(0, 0));
}

TEST(OpsTest, LogSoftmaxMatchesSoftmax) {
  const Matrix logits = {{0.3, -1.2, 2.0}};
  const Matrix p = SoftmaxRows(logits);
  const Matrix lp = LogSoftmaxRows(logits);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(std::exp(lp(0, j)), p(0, j), 1e-12);
  }
}

TEST(OpsTest, SoftmaxShiftInvariance) {
  const Matrix a = {{1.0, 2.0}};
  const Matrix b = {{101.0, 102.0}};
  EXPECT_LT(MaxAbsDiff(SoftmaxRows(a), SoftmaxRows(b)), 1e-12);
}

TEST(OpsTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp({-5.0}), -5.0, 1e-12);
  // One dominant term.
  EXPECT_NEAR(LogSumExp({0.0, -1000.0}), 0.0, 1e-12);
}

TEST(OpsTest, MatMulAssociativity) {
  Rng rng(21);
  Matrix a(3, 4), b(4, 5), c(5, 2);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Gaussian();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Gaussian();
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] = rng.Gaussian();
  const Matrix left = MatMul(MatMul(a, b), c);
  const Matrix right = MatMul(a, MatMul(b, c));
  EXPECT_LT(MaxAbsDiff(left, right), 1e-10);
}

}  // namespace
}  // namespace faction
