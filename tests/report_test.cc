#include <cmath>
#include <limits>
#include <sstream>

#include "fairness/metrics.h"
#include "gtest/gtest.h"
#include "stream/report.h"

namespace faction {
namespace {

RunResult MakeRun() {
  RunResult run;
  run.strategy_name = "FACTION";
  auto add = [&](int idx, int env, double acc, double ddp) {
    TaskMetrics m;
    m.task_index = idx;
    m.environment = env;
    m.accuracy = acc;
    m.ddp = ddp;
    m.eod = ddp / 2.0;
    m.mi = ddp / 10.0;
    m.queries_used = 100;
    run.per_task.push_back(m);
  };
  add(0, 0, 0.70, 0.20);
  add(1, 0, 0.80, 0.10);
  add(2, 1, 0.60, 0.30);
  add(3, 1, 0.75, 0.20);
  add(4, 1, 0.85, 0.10);
  run.summary = Summarize(run.per_task);
  run.total_queries = run.summary.total_queries;
  return run;
}

TEST(ReportTest, SummarizeByEnvironmentGroupsAndAverages) {
  const RunResult run = MakeRun();
  const std::vector<EnvironmentSummary> envs = SummarizeByEnvironment(run);
  ASSERT_EQ(envs.size(), 2u);
  EXPECT_EQ(envs[0].environment, 0);
  EXPECT_EQ(envs[0].num_tasks, 2u);
  EXPECT_NEAR(envs[0].mean_accuracy, 0.75, 1e-12);
  EXPECT_NEAR(envs[0].first_task_accuracy, 0.70, 1e-12);
  EXPECT_NEAR(envs[0].last_task_accuracy, 0.80, 1e-12);
  EXPECT_EQ(envs[1].environment, 1);
  EXPECT_EQ(envs[1].num_tasks, 3u);
  EXPECT_NEAR(envs[1].mean_accuracy, (0.60 + 0.75 + 0.85) / 3.0, 1e-12);
  EXPECT_NEAR(envs[1].mean_ddp, 0.20, 1e-12);
  EXPECT_NEAR(envs[1].first_task_accuracy, 0.60, 1e-12);
  EXPECT_NEAR(envs[1].last_task_accuracy, 0.85, 1e-12);
}

TEST(ReportTest, EmptyRunYieldsNoEnvironments) {
  RunResult run;
  EXPECT_TRUE(SummarizeByEnvironment(run).empty());
}

TEST(ReportTest, MarkdownReportContainsSections) {
  const RunResult run = MakeRun();
  std::ostringstream os;
  WriteMarkdownReport(run, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# Run report: FACTION"), std::string::npos);
  EXPECT_NE(out.find("## Per environment"), std::string::npos);
  EXPECT_NE(out.find("## Per task"), std::string::npos);
  EXPECT_NE(out.find("on-shift acc"), std::string::npos);
  EXPECT_NE(out.find("total queries: 500"), std::string::npos);
}

TEST(ReportTest, EnvironmentMeansExcludeUndefinedTasks) {
  RunResult run = MakeRun();
  // Make the first env-1 task (per-task index 2, ddp 0.30) undefined.
  run.per_task[2].ddp = std::numeric_limits<double>::quiet_NaN();
  run.per_task[2].ddp_defined = false;
  run.per_task[2].eod = std::numeric_limits<double>::quiet_NaN();
  run.per_task[2].eod_defined = false;
  run.summary = Summarize(run.per_task);
  const std::vector<EnvironmentSummary> envs = SummarizeByEnvironment(run);
  ASSERT_EQ(envs.size(), 2u);
  // Env 1 still counts 3 tasks but averages DDP over the 2 defined ones.
  EXPECT_EQ(envs[1].num_tasks, 3u);
  EXPECT_EQ(envs[1].ddp_defined_tasks, 2u);
  EXPECT_NEAR(envs[1].mean_ddp, (0.20 + 0.10) / 2.0, 1e-12);
  EXPECT_NEAR(envs[1].mean_eod, (0.10 + 0.05) / 2.0, 1e-12);
  // MI stayed defined everywhere.
  EXPECT_EQ(envs[1].mi_defined_tasks, 3u);
  // An environment where the metric is defined nowhere has a NaN mean.
  RunResult all_undefined = MakeRun();
  for (TaskMetrics& m : all_undefined.per_task) {
    m.ddp = std::numeric_limits<double>::quiet_NaN();
    m.ddp_defined = false;
  }
  const std::vector<EnvironmentSummary> none =
      SummarizeByEnvironment(all_undefined);
  EXPECT_TRUE(std::isnan(none[0].mean_ddp));
  EXPECT_EQ(none[0].ddp_defined_tasks, 0u);
}

TEST(ReportTest, MarkdownRendersUndefinedMetricsAsNa) {
  RunResult run = MakeRun();
  run.per_task[2].ddp = std::numeric_limits<double>::quiet_NaN();
  run.per_task[2].ddp_defined = false;
  run.summary = Summarize(run.per_task);
  std::ostringstream os;
  WriteMarkdownReport(run, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n/a"), std::string::npos);
  EXPECT_NE(out.find("undefined-metric tasks: 1"), std::string::npos);
  // The stream DDP mean is over the 4 defined tasks, not dragged toward 0
  // by the degenerate one.
  EXPECT_NE(out.find("DDP 0.150"), std::string::npos);
}

TEST(ReportTest, ComparisonReportListsMethods) {
  RunResult a = MakeRun();
  RunResult b = MakeRun();
  b.strategy_name = "Random";
  std::ostringstream os;
  WriteComparisonReport({a, b}, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("FACTION"), std::string::npos);
  EXPECT_NE(out.find("Random"), std::string::npos);
}

// ------------------------------------------------- GroupCalibrationGap

TEST(CalibrationTest, PerfectlyCalibratedGroupsHaveZeroGap) {
  // Both groups: score 0.2 -> 20% positive, score 0.8 -> 80% positive.
  std::vector<double> scores;
  std::vector<int> labels, sensitive;
  for (int g : {-1, 1}) {
    for (int rep = 0; rep < 10; ++rep) {
      scores.push_back(0.25);
      labels.push_back(rep < 2 ? 1 : 0);  // 20%
      sensitive.push_back(g);
      scores.push_back(0.85);
      labels.push_back(rep < 8 ? 1 : 0);  // 80%
      sensitive.push_back(g);
    }
  }
  const Result<double> gap =
      GroupCalibrationGap(scores, labels, sensitive, 10);
  ASSERT_TRUE(gap.ok()) << gap.status().ToString();
  EXPECT_NEAR(gap.value(), 0.0, 1e-12);
}

TEST(CalibrationTest, MiscalibratedGroupDetected) {
  // Same scores, but group +1's outcomes are all positive while group
  // -1's are all negative in the same bin.
  std::vector<double> scores;
  std::vector<int> labels, sensitive;
  for (int rep = 0; rep < 10; ++rep) {
    scores.push_back(0.55);
    labels.push_back(1);
    sensitive.push_back(1);
    scores.push_back(0.55);
    labels.push_back(0);
    sensitive.push_back(-1);
  }
  const Result<double> gap =
      GroupCalibrationGap(scores, labels, sensitive, 10);
  ASSERT_TRUE(gap.ok());
  EXPECT_NEAR(gap.value(), 1.0, 1e-12);
}

TEST(CalibrationTest, ScoresClampedToUnitInterval) {
  const std::vector<double> scores = {-0.5, 1.5, 0.5, 0.5};
  const std::vector<int> labels = {0, 1, 1, 0};
  const std::vector<int> sensitive = {1, -1, 1, -1};
  // -0.5 lands in the first bin (group +1 only), 1.5 in the last (group
  // -1 only): only the 0.5 bin is comparable.
  const Result<double> gap =
      GroupCalibrationGap(scores, labels, sensitive, 10);
  ASSERT_TRUE(gap.ok());
  EXPECT_NEAR(gap.value(), 1.0, 1e-12);
}

TEST(CalibrationTest, NoComparableBinFails) {
  const std::vector<double> scores = {0.1, 0.9};
  const std::vector<int> labels = {0, 1};
  const std::vector<int> sensitive = {1, -1};
  EXPECT_FALSE(GroupCalibrationGap(scores, labels, sensitive, 10).ok());
}

TEST(CalibrationTest, ValidationErrors) {
  EXPECT_FALSE(GroupCalibrationGap({}, {}, {}, 10).ok());
  EXPECT_FALSE(GroupCalibrationGap({0.5}, {1}, {1}, 0).ok());
  EXPECT_FALSE(GroupCalibrationGap({0.5, 0.5}, {1}, {1, -1}, 10).ok());
}

}  // namespace
}  // namespace faction
