#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/decoupled_strategy.h"
#include "baselines/fal_strategy.h"
#include "baselines/falcur_strategy.h"
#include "baselines/simple_strategies.h"
#include "baselines/uncertainty.h"
#include "common/rng.h"
#include "data/streams.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"

namespace faction {
namespace {

// Shared fixture: a labeled pool, a briefly trained model, and a candidate
// batch, wired into a SelectionContext.
class StrategyFixture {
 public:
  explicit StrategyFixture(std::uint64_t seed = 1, std::size_t pool_n = 150,
                           std::size_t cand_n = 80)
      : rng_(seed) {
    StationaryConfig config;
    config.scale.samples_per_task = pool_n + cand_n;
    config.scale.seed = seed + 100;
    config.dim = 6;
    config.num_tasks = 1;
    Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
    FACTION_CHECK(stream.ok());
    const Dataset& all = stream.value()[0];
    std::vector<std::size_t> pool_idx, cand_idx;
    for (std::size_t i = 0; i < pool_n; ++i) pool_idx.push_back(i);
    for (std::size_t i = pool_n; i < pool_n + cand_n; ++i) {
      cand_idx.push_back(i);
    }
    pool_ = all.Subset(pool_idx);
    const Dataset cand = all.Subset(cand_idx);
    cand_features_ = cand.features();
    cand_sensitive_ = cand.sensitive();
    cand_envs_ = cand.environments();

    MlpConfig mconfig;
    mconfig.input_dim = 6;
    mconfig.hidden_dims = {12, 6};
    Rng model_rng(seed + 7);
    model_ = std::make_unique<MlpClassifier>(mconfig, &model_rng);
    TrainConfig tconfig;
    tconfig.epochs = 3;
    Rng train_rng(seed + 13);
    FACTION_CHECK(
        TrainClassifier(model_.get(), pool_, tconfig, &train_rng).ok());
  }

  SelectionContext Context() {
    SelectionContext ctx;
    ctx.model = model_.get();
    ctx.labeled_pool = &pool_;
    ctx.candidate_features = &cand_features_;
    ctx.candidate_sensitive = &cand_sensitive_;
    ctx.candidate_environments = &cand_envs_;
    ctx.rng = &rng_;
    return ctx;
  }

  std::size_t num_candidates() const { return cand_features_.rows(); }
  const Matrix& candidates() const { return cand_features_; }
  const MlpClassifier& model() const { return *model_; }
  Dataset* mutable_pool() { return &pool_; }

 private:
  Rng rng_;
  Dataset pool_;
  Matrix cand_features_;
  std::vector<int> cand_sensitive_;
  std::vector<int> cand_envs_;
  std::unique_ptr<MlpClassifier> model_;
};

void ExpectValidBatch(const Result<std::vector<std::size_t>>& picked,
                      std::size_t batch, std::size_t pool) {
  ASSERT_TRUE(picked.ok()) << picked.status().ToString();
  EXPECT_EQ(picked.value().size(), std::min(batch, pool));
  std::set<std::size_t> unique(picked.value().begin(), picked.value().end());
  EXPECT_EQ(unique.size(), picked.value().size()) << "duplicate selections";
  for (std::size_t idx : picked.value()) EXPECT_LT(idx, pool);
}

// ----------------------------------------------------------- Uncertainty

TEST(UncertaintyTest, EntropyExtremes) {
  Matrix proba(2, 2);
  proba(0, 0) = 0.5;
  proba(0, 1) = 0.5;
  proba(1, 0) = 1.0;
  proba(1, 1) = 0.0;
  const std::vector<double> h = PredictiveEntropy(proba);
  EXPECT_NEAR(h[0], std::log(2.0), 1e-12);
  EXPECT_NEAR(h[1], 0.0, 1e-12);
}

TEST(UncertaintyTest, MarginExtremes) {
  Matrix proba(2, 2);
  proba(0, 0) = 0.5;
  proba(0, 1) = 0.5;
  proba(1, 0) = 0.95;
  proba(1, 1) = 0.05;
  const std::vector<double> m = MarginUncertainty(proba);
  EXPECT_NEAR(m[0], 1.0, 1e-12);
  EXPECT_NEAR(m[1], 0.1, 1e-12);
}

TEST(UncertaintyTest, EntropyMonotoneInAmbiguity) {
  Matrix proba(3, 2);
  proba(0, 0) = 0.9;
  proba(0, 1) = 0.1;
  proba(1, 0) = 0.7;
  proba(1, 1) = 0.3;
  proba(2, 0) = 0.55;
  proba(2, 1) = 0.45;
  const std::vector<double> h = PredictiveEntropy(proba);
  EXPECT_LT(h[0], h[1]);
  EXPECT_LT(h[1], h[2]);
}

// -------------------------------------------------------------- Random

TEST(RandomStrategyTest, ValidBatch) {
  StrategyFixture fx(1);
  RandomStrategy strategy;
  ExpectValidBatch(strategy.SelectBatch(fx.Context(), 20), 20,
                   fx.num_candidates());
}

TEST(RandomStrategyTest, BatchLargerThanPool) {
  StrategyFixture fx(2, 60, 10);
  RandomStrategy strategy;
  ExpectValidBatch(strategy.SelectBatch(fx.Context(), 50), 50, 10);
}

// -------------------------------------------------------------- Entropy

TEST(EntropyStrategyTest, PicksHighestEntropy) {
  StrategyFixture fx(3);
  EntropyStrategy strategy;
  SelectionContext ctx = fx.Context();
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(ctx, 10);
  ExpectValidBatch(picked, 10, fx.num_candidates());
  // Every selected candidate has entropy >= every unselected one.
  const Matrix proba = fx.model().PredictProba(fx.candidates());
  const std::vector<double> h = PredictiveEntropy(proba);
  double min_selected = 1e9;
  for (std::size_t idx : picked.value()) {
    min_selected = std::min(min_selected, h[idx]);
  }
  std::set<std::size_t> chosen(picked.value().begin(), picked.value().end());
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (chosen.count(i) == 0) {
      EXPECT_LE(h[i], min_selected + 1e-12);
    }
  }
}

// ---------------------------------------------------------------- QuFUR

TEST(QufurStrategyTest, ValidBatchAndStochastic) {
  StrategyFixture fx(4);
  QufurStrategy strategy(2.0);
  ExpectValidBatch(strategy.SelectBatch(fx.Context(), 15), 15,
                   fx.num_candidates());
  EXPECT_EQ(strategy.name(), "QuFUR");
}

// ------------------------------------------------------------------ DDU

TEST(DduStrategyTest, ValidBatch) {
  StrategyFixture fx(5);
  DduStrategy strategy;
  ExpectValidBatch(strategy.SelectBatch(fx.Context(), 25), 25,
                   fx.num_candidates());
}

TEST(DduStrategyTest, PrefersOodCandidates) {
  StrategyFixture fx(6, 200, 40);
  // Replace half the candidates with far-OOD points.
  Matrix cands = fx.candidates();
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < cands.cols(); ++j) {
      cands(i, j) = 40.0 + static_cast<double>(i);
    }
  }
  SelectionContext ctx = fx.Context();
  ctx.candidate_features = &cands;
  DduStrategy strategy;
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(ctx, 20);
  ASSERT_TRUE(picked.ok());
  std::size_t ood_hits = 0;
  for (std::size_t idx : picked.value()) {
    if (idx < 20) ++ood_hits;
  }
  EXPECT_GE(ood_hits, 18u);
}

TEST(DduStrategyTest, EmptyPoolFallsBackToRandom) {
  StrategyFixture fx(7);
  Dataset empty(6);
  SelectionContext ctx = fx.Context();
  ctx.labeled_pool = &empty;
  DduStrategy strategy;
  ExpectValidBatch(strategy.SelectBatch(ctx, 10), 10, fx.num_candidates());
}

// ------------------------------------------------------------------ FAL

TEST(FalStrategyTest, ValidBatch) {
  StrategyFixture fx(8);
  FalConfig config;
  config.reference_size = 32;
  FalStrategy strategy(config);
  ExpectValidBatch(strategy.SelectBatch(fx.Context(), 12), 12,
                   fx.num_candidates());
}

TEST(FalStrategyTest, EmptyCandidates) {
  StrategyFixture fx(9);
  Matrix empty(0, 6);
  SelectionContext ctx = fx.Context();
  ctx.candidate_features = &empty;
  std::vector<int> no_sensitive;
  ctx.candidate_sensitive = &no_sensitive;
  FalStrategy strategy(FalConfig{});
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(ctx, 10);
  ASSERT_TRUE(picked.ok());
  EXPECT_TRUE(picked.value().empty());
}

// -------------------------------------------------------------- FAL-CUR

TEST(FalCurStrategyTest, ValidBatch) {
  StrategyFixture fx(10);
  FalCurConfig config;
  config.beta = 0.5;
  FalCurStrategy strategy(config);
  ExpectValidBatch(strategy.SelectBatch(fx.Context(), 16), 16,
                   fx.num_candidates());
}

TEST(FalCurStrategyTest, SmallPoolShortCircuits) {
  StrategyFixture fx(11, 80, 8);
  FalCurStrategy strategy(FalCurConfig{});
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(fx.Context(), 20);
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value().size(), 8u);
}

TEST(FalCurStrategyTest, SpreadsAcrossClusters) {
  // With k = batch clusters, the round-robin must touch many clusters.
  StrategyFixture fx(12, 150, 100);
  FalCurConfig config;
  config.num_clusters = 10;
  FalCurStrategy strategy(config);
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(fx.Context(), 10);
  ExpectValidBatch(picked, 10, fx.num_candidates());
}

// ------------------------------------------------------------ Decoupled

TEST(DecoupledStrategyTest, ValidBatch) {
  StrategyFixture fx(13);
  DecoupledConfig config;
  DecoupledStrategy strategy(config);
  ExpectValidBatch(strategy.SelectBatch(fx.Context(), 14), 14,
                   fx.num_candidates());
}

TEST(DecoupledStrategyTest, SingleGroupPoolFallsBack) {
  StrategyFixture fx(14);
  // Restrict the pool to a single sensitive group.
  std::vector<std::size_t> only_pos;
  for (std::size_t i = 0; i < fx.mutable_pool()->size(); ++i) {
    if (fx.mutable_pool()->sensitive()[i] == 1) only_pos.push_back(i);
  }
  Dataset pos_pool = fx.mutable_pool()->Subset(only_pos);
  SelectionContext ctx = fx.Context();
  ctx.labeled_pool = &pos_pool;
  DecoupledStrategy strategy(DecoupledConfig{});
  ExpectValidBatch(strategy.SelectBatch(ctx, 10), 10, fx.num_candidates());
}

// All strategies under one parameterized sweep of batch sizes.
class BatchSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizeSweep, EveryStrategyHonorsBatch) {
  StrategyFixture fx(15);
  const std::size_t batch = GetParam();
  RandomStrategy random;
  EntropyStrategy entropy;
  QufurStrategy qufur(2.0);
  DduStrategy ddu;
  FalConfig fal_config;
  fal_config.reference_size = 24;
  FalStrategy fal(fal_config);
  FalCurStrategy falcur(FalCurConfig{});
  DecoupledStrategy decoupled(DecoupledConfig{});
  std::vector<QueryStrategy*> strategies = {
      &random, &entropy, &qufur, &ddu, &fal, &falcur, &decoupled};
  for (QueryStrategy* strategy : strategies) {
    SelectionContext ctx = fx.Context();
    ExpectValidBatch(strategy->SelectBatch(ctx, batch), batch,
                     fx.num_candidates());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSizeSweep,
                         ::testing::Values(1, 5, 25, 80));

}  // namespace
}  // namespace faction
