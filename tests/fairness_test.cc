#include <cmath>

#include "common/rng.h"
#include "fairness/metrics.h"
#include "fairness/relaxed.h"
#include "gtest/gtest.h"

namespace faction {
namespace {

// ------------------------------------------------------------------ DDP

TEST(DdpTest, HandComputedValue) {
  // Group +1: rates 2/3 positive; group -1: 1/3 positive. DDP = 1/3.
  const std::vector<int> yhat = {1, 1, 0, 1, 0, 0};
  const std::vector<int> s = {1, 1, 1, -1, -1, -1};
  const Result<double> ddp = DemographicParityDifference(yhat, s);
  ASSERT_TRUE(ddp.ok());
  EXPECT_NEAR(ddp.value(), 1.0 / 3.0, 1e-12);
}

TEST(DdpTest, ZeroWhenRatesEqual) {
  const std::vector<int> yhat = {1, 0, 1, 0};
  const std::vector<int> s = {1, 1, -1, -1};
  EXPECT_NEAR(DemographicParityDifference(yhat, s).value(), 0.0, 1e-12);
}

TEST(DdpTest, MaximalDisparity) {
  const std::vector<int> yhat = {1, 1, 0, 0};
  const std::vector<int> s = {1, 1, -1, -1};
  EXPECT_NEAR(DemographicParityDifference(yhat, s).value(), 1.0, 1e-12);
}

TEST(DdpTest, SymmetricInGroups) {
  const std::vector<int> yhat = {1, 0, 0, 0, 1, 1};
  const std::vector<int> s = {1, 1, 1, -1, -1, -1};
  std::vector<int> flipped(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) flipped[i] = -s[i];
  EXPECT_NEAR(DemographicParityDifference(yhat, s).value(),
              DemographicParityDifference(yhat, flipped).value(), 1e-12);
}

TEST(DdpTest, UndefinedOnSingleGroup) {
  const Result<double> ddp =
      DemographicParityDifference({1, 0}, {1, 1});
  ASSERT_FALSE(ddp.ok());
  EXPECT_EQ(ddp.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DdpTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(DemographicParityDifference({}, {}).ok());
  EXPECT_FALSE(DemographicParityDifference({1}, {1, -1}).ok());
}

// ------------------------------------------------------------------ EOD

TEST(EodTest, HandComputedValue) {
  // y=1 cell: group +1 TPR 1.0 (1/1), group -1 TPR 0.0 (0/1) -> gap 1.0.
  // y=0 cell: both FPR 0 -> gap 0. EOD = 1.0.
  const std::vector<int> yhat = {1, 0, 0, 0};
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<int> s = {1, -1, 1, -1};
  const Result<double> eod = EqualizedOddsDifference(yhat, y, s);
  ASSERT_TRUE(eod.ok());
  EXPECT_NEAR(eod.value(), 1.0, 1e-12);
}

TEST(EodTest, PerfectEqualizedOdds) {
  // Identical conditional behavior across groups.
  const std::vector<int> yhat = {1, 0, 1, 0, 0, 1, 0, 1};
  const std::vector<int> y = {1, 1, 1, 1, 0, 0, 0, 0};
  const std::vector<int> s = {1, 1, -1, -1, 1, 1, -1, -1};
  EXPECT_NEAR(EqualizedOddsDifference(yhat, y, s).value(), 0.0, 1e-12);
}

TEST(EodTest, TakesMaxOverLabelCells) {
  // y=1: TPR +1 = 1, TPR -1 = 1 -> gap 0.
  // y=0: FPR +1 = 1, FPR -1 = 0 -> gap 1.
  const std::vector<int> yhat = {1, 1, 1, 0};
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<int> s = {1, -1, 1, -1};
  EXPECT_NEAR(EqualizedOddsDifference(yhat, y, s).value(), 1.0, 1e-12);
}

TEST(EodTest, SkipsNonComparableCells) {
  // Only the y=1 cell has both groups.
  const std::vector<int> yhat = {1, 0, 1};
  const std::vector<int> y = {1, 1, 0};
  const std::vector<int> s = {1, -1, 1};
  const Result<double> eod = EqualizedOddsDifference(yhat, y, s);
  ASSERT_TRUE(eod.ok());
  EXPECT_NEAR(eod.value(), 1.0, 1e-12);
}

TEST(EodTest, UndefinedWhenNoComparableCell) {
  const std::vector<int> yhat = {1, 0};
  const std::vector<int> y = {1, 0};
  const std::vector<int> s = {1, 1};
  EXPECT_FALSE(EqualizedOddsDifference(yhat, y, s).ok());
}

// ------------------------------------------------------------------- MI

TEST(MiTest, ZeroForIndependence) {
  // yhat independent of s by construction.
  const std::vector<int> yhat = {1, 1, 0, 0};
  const std::vector<int> s = {1, -1, 1, -1};
  EXPECT_NEAR(MutualInformation(yhat, s).value(), 0.0, 1e-12);
}

TEST(MiTest, MaximalForPerfectCorrelation) {
  const std::vector<int> yhat = {1, 1, 0, 0};
  const std::vector<int> s = {1, 1, -1, -1};
  // I = H(yhat) = log 2 for a deterministic relationship.
  EXPECT_NEAR(MutualInformation(yhat, s).value(), std::log(2.0), 1e-12);
}

TEST(MiTest, HandComputedAsymmetricCase) {
  // Joint: (1,+): 2/6, (1,-): 1/6, (0,+): 1/6, (0,-): 2/6.
  const std::vector<int> yhat = {1, 1, 1, 0, 0, 0};
  const std::vector<int> s = {1, 1, -1, 1, -1, -1};
  double expect = 0.0;
  const double joint[2][2] = {{2.0 / 6, 1.0 / 6}, {1.0 / 6, 2.0 / 6}};
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      expect += joint[a][b] * std::log(joint[a][b] / (0.5 * 0.5));
    }
  }
  EXPECT_NEAR(MutualInformation(yhat, s).value(), expect, 1e-12);
}

TEST(MiTest, NonNegativeOnRandomInputs) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> yhat(40), s(40);
    for (int i = 0; i < 40; ++i) {
      yhat[i] = rng.Bernoulli(0.4) ? 1 : 0;
      s[i] = rng.Bernoulli(0.6) ? 1 : -1;
    }
    const Result<double> mi = MutualInformation(yhat, s);
    ASSERT_TRUE(mi.ok());
    EXPECT_GE(mi.value(), 0.0);
    EXPECT_LE(mi.value(), std::log(2.0) + 1e-12);
  }
}

// -------------------------------------------------------------- Accuracy

TEST(AccuracyTest, Basic) {
  EXPECT_NEAR(Accuracy({1, 0, 1, 1}, {1, 0, 0, 1}).value(), 0.75, 1e-12);
  EXPECT_NEAR(Accuracy({0}, {0}).value(), 1.0, 1e-12);
  EXPECT_FALSE(Accuracy({}, {}).ok());
}

// ------------------------------------------------------- RelaxedFairness

TEST(RelaxedTest, CoefficientsSumToZero) {
  // sum_i c_i = (n1*(1-p1) - n-1*p1)/(p1(1-p1)) ... = 0 by construction.
  const std::vector<int> s = {1, 1, -1, -1, -1, 1, 1};
  std::size_t m = 0;
  const Result<std::vector<double>> coeffs =
      RelaxedFairnessCoefficients(FairnessNotion::kDdp, s, {}, &m);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_EQ(m, s.size());
  double sum = 0.0;
  for (double c : coeffs.value()) sum += c;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(RelaxedTest, DdpValueIsGroupMeanDifference) {
  // For balanced groups, v = E[h | s=+1] - E[h | s=-1].
  const std::vector<int> s = {1, 1, -1, -1};
  const std::vector<double> scores = {0.9, 0.7, 0.2, 0.4};
  const Result<double> v =
      RelaxedFairness(FairnessNotion::kDdp, scores, s, {});
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value(), (0.8 - 0.3), 1e-9);
}

TEST(RelaxedTest, ZeroForGroupIndependentScores) {
  const std::vector<int> s = {1, -1, 1, -1, 1, -1};
  const std::vector<double> scores = {0.5, 0.5, 0.2, 0.2, 0.8, 0.8};
  const Result<double> v =
      RelaxedFairness(FairnessNotion::kDdp, scores, s, {});
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value(), 0.0, 1e-9);
}

TEST(RelaxedTest, SignTracksFavoredGroup) {
  const std::vector<int> s = {1, 1, -1, -1};
  const Result<double> favor_pos =
      RelaxedFairness(FairnessNotion::kDdp, {0.9, 0.9, 0.1, 0.1}, s, {});
  const Result<double> favor_neg =
      RelaxedFairness(FairnessNotion::kDdp, {0.1, 0.1, 0.9, 0.9}, s, {});
  ASSERT_TRUE(favor_pos.ok() && favor_neg.ok());
  EXPECT_GT(favor_pos.value(), 0.0);
  EXPECT_LT(favor_neg.value(), 0.0);
  EXPECT_NEAR(favor_pos.value(), -favor_neg.value(), 1e-9);
}

TEST(RelaxedTest, DeoOnlyUsesPositives) {
  const std::vector<int> s = {1, -1, 1, -1};
  const std::vector<int> y = {1, 1, 0, 0};
  // Scores on y=0 samples must not matter for DEO.
  const Result<double> a = RelaxedFairness(FairnessNotion::kDeo,
                                           {0.9, 0.3, 0.0, 0.0}, s, y);
  const Result<double> b = RelaxedFairness(FairnessNotion::kDeo,
                                           {0.9, 0.3, 1.0, 1.0}, s, y);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a.value(), b.value(), 1e-12);
  EXPECT_NEAR(a.value(), 0.9 - 0.3, 1e-9);
}

TEST(RelaxedTest, DeoRequiresLabels) {
  const std::vector<int> s = {1, -1};
  EXPECT_FALSE(
      RelaxedFairness(FairnessNotion::kDeo, {0.5, 0.5}, s, {}).ok());
}

TEST(RelaxedTest, FailsOnSingleGroup) {
  const std::vector<int> s = {1, 1, 1};
  const Result<double> v =
      RelaxedFairness(FairnessNotion::kDdp, {0.1, 0.2, 0.3}, s, {});
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RelaxedTest, FailsOnEmptyOrMismatch) {
  EXPECT_FALSE(RelaxedFairness(FairnessNotion::kDdp, {}, {}, {}).ok());
  EXPECT_FALSE(
      RelaxedFairness(FairnessNotion::kDdp, {0.5}, {1, -1}, {}).ok());
}

TEST(RelaxedTest, DeoFailsWithoutPositives) {
  const std::vector<int> s = {1, -1};
  const std::vector<int> y = {0, 0};
  EXPECT_FALSE(
      RelaxedFairness(FairnessNotion::kDeo, {0.5, 0.5}, s, y).ok());
}

// Property: the relaxed DDP of hard 0/1 scores equals the signed DDP.
TEST(RelaxedTest, HardScoresRecoverSignedDdp) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> s(60), yhat(60);
    std::vector<double> scores(60);
    for (int i = 0; i < 60; ++i) {
      s[i] = rng.Bernoulli(0.5) ? 1 : -1;
      yhat[i] = rng.Bernoulli(0.5) ? 1 : 0;
      scores[i] = yhat[i];
    }
    const Result<double> v =
        RelaxedFairness(FairnessNotion::kDdp, scores, s, {});
    const Result<double> ddp = DemographicParityDifference(yhat, s);
    if (!v.ok() || !ddp.ok()) continue;
    EXPECT_NEAR(std::fabs(v.value()), ddp.value(), 1e-9);
  }
}

}  // namespace
}  // namespace faction
