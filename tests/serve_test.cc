// Serve-layer tests (DESIGN.md §14): work-stealing deque semantics and a
// multi-thread stress (the TSan target), job-system task-graph ordering,
// and the replay gate — 64 interleaved sessions served at 1 worker and at
// 8 workers must produce bitwise-identical per-session query decisions,
// model parameters, and metrics to running each stream alone.
#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/rng.h"
#include "core/streaming_faction.h"
#include "data/dataset.h"
#include "serve/job_system.h"
#include "serve/serve_runtime.h"
#include "serve/session.h"
#include "serve/session_registry.h"

namespace faction {
namespace {

// ---------------------------------------------------------------------------
// WorkStealingDeque

TEST(WorkStealingDeque, OwnerLifoThiefFifo) {
  WorkStealingDeque dq(8);
  for (std::uint32_t v = 0; v < 4; ++v) EXPECT_TRUE(dq.Push(v));
  EXPECT_EQ(4u, dq.SizeEstimate());

  std::uint32_t v = 0;
  EXPECT_TRUE(dq.Pop(&v));
  EXPECT_EQ(3u, v);  // owner pops newest
  EXPECT_TRUE(dq.Steal(&v));
  EXPECT_EQ(0u, v);  // thief steals oldest
  EXPECT_TRUE(dq.Pop(&v));
  EXPECT_EQ(2u, v);
  EXPECT_TRUE(dq.Steal(&v));
  EXPECT_EQ(1u, v);
  EXPECT_FALSE(dq.Pop(&v));
  EXPECT_FALSE(dq.Steal(&v));
  EXPECT_EQ(0u, dq.SizeEstimate());
}

TEST(WorkStealingDeque, PushRefusesWhenFull) {
  WorkStealingDeque dq(4);  // rounds to capacity 4
  EXPECT_EQ(4u, dq.capacity());
  for (std::uint32_t v = 0; v < 4; ++v) EXPECT_TRUE(dq.Push(v));
  EXPECT_FALSE(dq.Push(99));
  std::uint32_t v = 0;
  EXPECT_TRUE(dq.Steal(&v));
  EXPECT_EQ(0u, v);
  EXPECT_TRUE(dq.Push(99));  // freed slot is reusable
}

// The TSan target: one owner interleaving pushes and pops with three
// concurrent thieves. Every pushed value must be consumed exactly once,
// across any interleaving.
TEST(WorkStealingDeque, StressEveryValueConsumedExactlyOnce) {
  constexpr std::uint32_t kValues = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque dq(64);
  std::vector<std::atomic<std::uint32_t>> seen(kValues);
  std::atomic<std::uint32_t> consumed{0};
  std::atomic<bool> done_pushing{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::uint32_t v = 0;
      while (!done_pushing.load(std::memory_order_seq_cst) ||
             consumed.load(std::memory_order_seq_cst) < kValues) {
        if (dq.Steal(&v)) {
          seen[v].fetch_add(1, std::memory_order_seq_cst);
          consumed.fetch_add(1, std::memory_order_seq_cst);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push everything (spinning past full), popping a batch every so
  // often so the owner path races the thieves too.
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < kValues; ++i) {
    while (!dq.Push(i)) {
      if (dq.Pop(&v)) {
        seen[v].fetch_add(1, std::memory_order_seq_cst);
        consumed.fetch_add(1, std::memory_order_seq_cst);
      }
    }
    if (i % 7 == 0 && dq.Pop(&v)) {
      seen[v].fetch_add(1, std::memory_order_seq_cst);
      consumed.fetch_add(1, std::memory_order_seq_cst);
    }
  }
  while (dq.Pop(&v)) {
    seen[v].fetch_add(1, std::memory_order_seq_cst);
    consumed.fetch_add(1, std::memory_order_seq_cst);
  }
  done_pushing.store(true, std::memory_order_seq_cst);
  for (std::thread& t : thieves) t.join();

  EXPECT_EQ(kValues, consumed.load());
  for (std::uint32_t i = 0; i < kValues; ++i) {
    EXPECT_EQ(1u, seen[i].load()) << "value " << i;
  }
}

// ---------------------------------------------------------------------------
// JobSystem

TEST(JobSystem, SynchronousModeRunsInline) {
  JobSystem::Options options;
  options.workers = 0;
  JobSystem jobs(options);
  int runs = 0;
  const JobSystem::JobHandle h = jobs.Submit(
      [](void* ctx) { ++*static_cast<int*>(ctx); }, &runs);
  // Inline mode: already finished when Submit returns.
  EXPECT_EQ(1, runs);
  EXPECT_TRUE(jobs.Done(h));
  jobs.WaitIdle();
  EXPECT_EQ(0u, jobs.InFlight());
}

TEST(JobSystem, ManyJobsAllExecuteOnWorkers) {
  JobSystem::Options options;
  options.workers = 4;
  JobSystem jobs(options);
  std::atomic<int> runs{0};
  for (int i = 0; i < 2000; ++i) {
    jobs.Submit(
        [](void* ctx) {
          static_cast<std::atomic<int>*>(ctx)->fetch_add(
              1, std::memory_order_seq_cst);
        },
        &runs);
  }
  jobs.WaitIdle();
  EXPECT_EQ(2000, runs.load());
}

struct DiamondState {
  std::atomic<int> order{0};
  std::atomic<int> a_rank{-1};
  std::atomic<int> b_rank{-1};
  std::atomic<int> c_rank{-1};
  std::atomic<int> d_rank{-1};
};

TEST(JobSystem, DiamondDependenciesRespectOrder) {
  for (const int workers : {0, 3}) {
    JobSystem::Options options;
    options.workers = workers;
    JobSystem jobs(options);
    DiamondState state;
    const auto rank = [](std::atomic<int>* slot, DiamondState* s) {
      slot->store(s->order.fetch_add(1, std::memory_order_seq_cst),
                  std::memory_order_seq_cst);
    };
    struct Ctx {
      std::atomic<int>* slot;
      DiamondState* state;
      void (*rank)(std::atomic<int>*, DiamondState*);
    };
    Ctx ca{&state.a_rank, &state, rank};
    Ctx cb{&state.b_rank, &state, rank};
    Ctx cc{&state.c_rank, &state, rank};
    Ctx cd{&state.d_rank, &state, rank};
    const auto run = [](void* ctx) {
      auto* c = static_cast<Ctx*>(ctx);
      c->rank(c->slot, c->state);
    };

    const JobSystem::JobHandle a = jobs.Submit(run, &ca);
    const JobSystem::JobHandle ab[] = {a};
    const JobSystem::JobHandle b = jobs.SubmitAfter(ab, 1, run, &cb);
    const JobSystem::JobHandle c = jobs.SubmitAfter(ab, 1, run, &cc);
    const JobSystem::JobHandle bc[] = {b, c};
    const JobSystem::JobHandle d = jobs.SubmitAfter(bc, 2, run, &cd);
    jobs.Wait(d);

    EXPECT_LT(state.a_rank.load(), state.b_rank.load());
    EXPECT_LT(state.a_rank.load(), state.c_rank.load());
    EXPECT_LT(state.b_rank.load(), state.d_rank.load());
    EXPECT_LT(state.c_rank.load(), state.d_rank.load());
    jobs.WaitIdle();
  }
}

TEST(JobSystem, DependencyOnFinishedOrDefaultHandleIsSatisfied) {
  JobSystem::Options options;
  options.workers = 2;
  JobSystem jobs(options);
  std::atomic<int> runs{0};
  const auto bump = [](void* ctx) {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(
        1, std::memory_order_seq_cst);
  };
  const JobSystem::JobHandle a = jobs.Submit(bump, &runs);
  jobs.Wait(a);
  // `a` is finished (possibly recycled); a default handle never existed.
  const JobSystem::JobHandle deps[] = {a, JobSystem::JobHandle{}};
  const JobSystem::JobHandle b = jobs.SubmitAfter(deps, 2, bump, &runs);
  jobs.Wait(b);
  EXPECT_EQ(2, runs.load());
  EXPECT_TRUE(jobs.Done(a));
  EXPECT_TRUE(jobs.Done(JobSystem::JobHandle{}));
}

// Long dependency chains exercise continuation hand-off under stealing.
TEST(JobSystem, ChainExecutesInSequence) {
  JobSystem::Options options;
  options.workers = 4;
  JobSystem jobs(options);
  constexpr int kLinks = 500;
  std::vector<int> sequence;
  sequence.reserve(kLinks);
  struct Ctx {
    std::vector<int>* sequence;
    int value;
  };
  std::vector<Ctx> ctxs(kLinks);
  JobSystem::JobHandle prev{};
  for (int i = 0; i < kLinks; ++i) {
    ctxs[i] = Ctx{&sequence, i};
    const auto run = [](void* ctx) {
      auto* c = static_cast<Ctx*>(ctx);
      // The chain serializes execution, so no lock is needed (TSan would
      // object otherwise).
      c->sequence->push_back(c->value);
    };
    const JobSystem::JobHandle deps[] = {prev};
    prev = jobs.SubmitAfter(deps, 1, run, &ctxs[i]);
  }
  jobs.Wait(prev);
  ASSERT_EQ(static_cast<std::size_t>(kLinks), sequence.size());
  for (int i = 0; i < kLinks; ++i) EXPECT_EQ(i, sequence[i]);
}

// ---------------------------------------------------------------------------
// Session registry

TEST(SessionRegistry, CreateFindErase) {
  SessionRegistry registry;
  ServeSessionOptions options;
  options.stream_id = 42;
  options.faction.model.input_dim = 4;
  options.faction.model.hidden_dims = {4};
  ServeSession* s = registry.Create(options);
  ASSERT_NE(nullptr, s);
  EXPECT_EQ(42u, s->stream_id());
  EXPECT_EQ(s, registry.Find(42));
  EXPECT_EQ(nullptr, registry.Find(7));
  EXPECT_EQ(1u, registry.size());
  EXPECT_EQ(std::vector<ServeSession*>{s}, registry.Sessions());
  EXPECT_TRUE(registry.Erase(42));
  EXPECT_FALSE(registry.Erase(42));
  EXPECT_EQ(0u, registry.size());
}

// ---------------------------------------------------------------------------
// Replay gate: bitwise-identical sessions at any worker count.

StreamingFactionConfig ReplayConfig(std::uint64_t seed) {
  StreamingFactionConfig config;
  config.model.input_dim = 6;
  config.model.hidden_dims = {8};
  config.model.num_classes = 2;
  config.train.epochs = 2;
  config.train.batch_size = 16;
  config.warm_start = 12;
  config.burn_in = 6;
  config.refit_interval = 20;
  config.seed = seed;
  return config;
}

std::vector<Example> MakeStream(std::size_t n, std::size_t dim,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    Example& ex = stream[i];
    ex.label = rng.Bernoulli(0.5) ? 1 : 0;
    ex.sensitive = rng.Bernoulli(0.5) ? 1 : -1;
    ex.environment = 0;
    ex.x.resize(dim);
    const double center = ex.label == 1 ? 1.5 : -1.5;
    const double shift = ex.sensitive == 1 ? 0.4 : -0.4;
    for (std::size_t d = 0; d < dim; ++d) {
      ex.x[d] = rng.Gaussian(center + shift, 1.0);
    }
  }
  return stream;
}

struct SessionOutput {
  std::vector<std::uint8_t> decisions;
  std::vector<std::uint64_t> param_bits;  // bitwise model parameters
  std::size_t queries = 0;
  std::size_t seen = 0;
  std::size_t pool = 0;

  bool operator==(const SessionOutput& o) const {
    return decisions == o.decisions && param_bits == o.param_bits &&
           queries == o.queries && seen == o.seen && pool == o.pool;
  }
};

std::vector<std::uint64_t> ParamBits(const StreamingFaction& faction) {
  std::vector<std::uint64_t> bits;
  for (const Matrix* m : faction.model().Parameters()) {
    const std::size_t n = m->rows() * m->cols();
    const std::size_t base = bits.size();
    bits.resize(base + n);
    static_assert(sizeof(double) == sizeof(std::uint64_t), "");
    std::memcpy(bits.data() + base, m->data(), n * sizeof(double));
  }
  return bits;
}

SessionOutput Capture(const StreamingFaction& faction,
                      const std::vector<std::uint8_t>& decisions) {
  SessionOutput out;
  out.decisions = decisions;
  out.param_bits = ParamBits(faction);
  out.queries = faction.queries_made();
  out.seen = faction.samples_seen();
  out.pool = faction.pool_size();
  return out;
}

constexpr std::size_t kReplaySessions = 64;
constexpr std::size_t kReplaySteps = 90;

// Reference: each stream folded into its own StreamingFaction alone.
std::vector<SessionOutput> RunStandalone() {
  std::vector<SessionOutput> outputs;
  outputs.reserve(kReplaySessions);
  for (std::size_t s = 0; s < kReplaySessions; ++s) {
    const StreamingFactionConfig config = ReplayConfig(100 + s);
    StreamingFaction faction(config);
    const std::vector<Example> stream =
        MakeStream(kReplaySteps, config.model.input_dim, 1000 + s);
    std::vector<std::uint8_t> decisions;
    decisions.reserve(kReplaySteps);
    for (const Example& ex : stream) {
      const bool query = faction.ShouldQuery(ex).value();
      if (query) {
        EXPECT_TRUE(faction.ProvideLabel(ex).ok());
      }
      decisions.push_back(query ? 1 : 0);
    }
    outputs.push_back(Capture(faction, decisions));
  }
  return outputs;
}

std::vector<SessionOutput> RunServed(int workers) {
  ServeRuntimeOptions runtime_options;
  runtime_options.workers = workers;
  runtime_options.max_sessions = kReplaySessions;
  runtime_options.record_latency = false;
  ServeRuntime runtime(runtime_options);

  std::vector<ServeSession*> sessions;
  std::vector<std::vector<Example>> streams;
  sessions.reserve(kReplaySessions);
  streams.reserve(kReplaySessions);
  for (std::size_t s = 0; s < kReplaySessions; ++s) {
    ServeSessionOptions options;
    options.stream_id = s;
    options.faction = ReplayConfig(100 + s);
    // Large enough that the replay never sheds (shedding would change
    // the stream a session observes).
    options.mailbox_capacity = kReplaySteps;
    options.decision_log_capacity = kReplaySteps;
    sessions.push_back(runtime.CreateSession(options));
    streams.push_back(
        MakeStream(kReplaySteps, options.faction.model.input_dim,
                   1000 + s));
  }

  // Round-robin across sessions: maximally interleaved arrival order.
  for (std::size_t i = 0; i < kReplaySteps; ++i) {
    for (std::size_t s = 0; s < kReplaySessions; ++s) {
      EXPECT_TRUE(runtime.Offer(sessions[s], streams[s][i]));
    }
  }
  runtime.Drain();

  std::vector<SessionOutput> outputs;
  outputs.reserve(kReplaySessions);
  for (std::size_t s = 0; s < kReplaySessions; ++s) {
    EXPECT_TRUE(sessions[s]->MailboxEmpty());
    EXPECT_EQ(0u, sessions[s]->shed());
    EXPECT_EQ(kReplaySteps, sessions[s]->steps());
    outputs.push_back(
        Capture(sessions[s]->faction(), sessions[s]->decisions()));
  }
  return outputs;
}

TEST(ServeReplay, BitwiseIdenticalAcrossWorkerCounts) {
  const std::vector<SessionOutput> standalone = RunStandalone();
  const std::vector<SessionOutput> served1 = RunServed(1);
  const std::vector<SessionOutput> served8 = RunServed(8);
  ASSERT_EQ(kReplaySessions, standalone.size());
  ASSERT_EQ(kReplaySessions, served1.size());
  ASSERT_EQ(kReplaySessions, served8.size());
  for (std::size_t s = 0; s < kReplaySessions; ++s) {
    EXPECT_TRUE(standalone[s] == served1[s]) << "session " << s;
    EXPECT_TRUE(standalone[s] == served8[s]) << "session " << s;
    EXPECT_FALSE(standalone[s].param_bits.empty());
    EXPECT_EQ(kReplaySteps, standalone[s].decisions.size());
  }
}

// Synchronous mode (workers == 0) is the determinism reference the
// allocation-audit gate runs in; it must match too.
TEST(ServeReplay, SynchronousModeMatchesStandalone) {
  const std::vector<SessionOutput> standalone = RunStandalone();
  const std::vector<SessionOutput> sync = RunServed(0);
  for (std::size_t s = 0; s < kReplaySessions; ++s) {
    EXPECT_TRUE(standalone[s] == sync[s]) << "session " << s;
  }
}

}  // namespace
}  // namespace faction
