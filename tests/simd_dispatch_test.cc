// Per-kernel dispatch override (FACTION_SIMD_LOGPDF_LEVEL): its own test
// binary because the override is read once, at the process's first
// dispatch resolution. The static initializer below sets the variable
// before main() — and therefore before any kernel table is resolved — so
// every test in this binary sees the override active. simd_test.cc keeps
// the un-overridden default covered.

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "density/gaussian.h"
#include "tensor/matrix.h"
#include "tensor/simd.h"

#include "gtest/gtest.h"

namespace {
// Runs during static init, strictly before any SIMD dispatch.
const bool kEnvReady = [] {
  setenv("FACTION_SIMD_LOGPDF_LEVEL", "avx2", /*overwrite=*/1);
  return true;
}();
}  // namespace

namespace faction {
namespace {

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : saved_(ActiveSimdLevel()) {
    EXPECT_TRUE(SetSimdLevel(level).ok());
  }
  ~ScopedSimdLevel() { (void)SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> out;
  for (SimdLevel level :
       {SimdLevel::kGeneric, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (SimdLevelSupported(level)) out.push_back(level);
  }
  return out;
}

// With the override pinned to avx2, every tier's table must carry the
// avx2 solve while keeping its own identity and its own GEMM kernels.
TEST(SimdDispatch, OverridePinsLogPdfKernelAcrossTiers) {
  ASSERT_TRUE(kEnvReady);
  if (!SimdLevelSupported(SimdLevel::kAvx2)) {
    GTEST_SKIP() << "avx2 tier unavailable; override inert on this host";
  }
  ScopedSimdLevel avx2(SimdLevel::kAvx2);
  const SimdKernels& avx2_table = ActiveSimd();
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel guard(level);
    const SimdKernels& table = ActiveSimd();
    EXPECT_EQ(table.logpdf_block, avx2_table.logpdf_block)
        << SimdLevelName(level);
    // The override pins both triangular-solve slots together: the
    // downdate guard solve follows the log-pdf solve's tier.
    EXPECT_EQ(table.downdate_solve, avx2_table.downdate_solve)
        << SimdLevelName(level);
    // Identity fields and the GEMM slots stay the tier's own.
    EXPECT_EQ(table.level, level) << SimdLevelName(level);
    EXPECT_STREQ(table.name, SimdLevelName(level));
    if (level != SimdLevel::kAvx2) {
      EXPECT_NE(table.matmul_rows, avx2_table.matmul_rows)
          << SimdLevelName(level);
    }
  }
}

// The override is a speed knob only: log-pdf outputs stay bitwise equal
// to the scalar per-sample path at every tier, borrowed kernel or not.
TEST(SimdDispatch, LogPdfBitwiseParityWithOverrideActive) {
  ASSERT_TRUE(kEnvReady);
  Rng rng(4096);
  const std::size_t d = 16;
  Matrix samples(64, d);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples.data()[i] = rng.Gaussian();
  }
  Result<Gaussian> fitted = Gaussian::Fit(samples, CovarianceConfig{});
  ASSERT_TRUE(fitted.ok());
  const Gaussian& g = fitted.value();

  const std::size_t rows = 131;  // vector body plus scalar tail
  Matrix zs(rows, d);
  for (std::size_t i = 0; i < zs.size(); ++i) zs.data()[i] = rng.Gaussian();
  std::vector<double> reference(rows);
  std::vector<double> z(d);
  for (std::size_t i = 0; i < rows; ++i) {
    std::copy(zs.row_data(i), zs.row_data(i) + d, z.begin());
    reference[i] = g.LogPdf(z);
  }

  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel guard(level);
    std::vector<double> batch(rows, -1.0);
    g.LogPdfBatch(zs, batch.data());
    EXPECT_EQ(std::memcmp(reference.data(), batch.data(),
                          rows * sizeof(double)),
              0)
        << SimdLevelName(level);
  }
}

}  // namespace
}  // namespace faction
