#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"
#include "data/streams.h"
#include "gtest/gtest.h"
#include "nn/mlp.h"
#include "stream/evaluator.h"
#include "stream/oracle.h"
#include "stream/selection.h"

namespace faction {
namespace {

Dataset SmallTask(std::size_t n = 20, std::uint64_t seed = 1) {
  StationaryConfig config;
  config.scale.samples_per_task = n;
  config.scale.seed = seed;
  config.dim = 4;
  config.num_tasks = 1;
  Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
  EXPECT_TRUE(stream.ok());
  return std::move(stream.value()[0]);
}

// ---------------------------------------------------------------- Oracle

TEST(OracleTest, QueryConsumesBudget) {
  const Dataset task = SmallTask();
  LabelOracle oracle(task, 3);
  EXPECT_EQ(oracle.budget_remaining(), 3u);
  EXPECT_EQ(oracle.num_unlabeled(), 20u);
  const Result<int> label = oracle.QueryLabel(5);
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(label.value(), task.labels()[5]);
  EXPECT_EQ(oracle.budget_remaining(), 2u);
  EXPECT_EQ(oracle.queries_used(), 1u);
  EXPECT_TRUE(oracle.IsLabeled(5));
  EXPECT_EQ(oracle.num_unlabeled(), 19u);
}

TEST(OracleTest, DoubleQueryRejected) {
  const Dataset task = SmallTask();
  LabelOracle oracle(task, 5);
  ASSERT_TRUE(oracle.QueryLabel(0).ok());
  const Result<int> again = oracle.QueryLabel(0);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(oracle.budget_remaining(), 4u);  // no budget consumed
}

TEST(OracleTest, BudgetExhaustion) {
  const Dataset task = SmallTask();
  LabelOracle oracle(task, 2);
  ASSERT_TRUE(oracle.QueryLabel(0).ok());
  ASSERT_TRUE(oracle.QueryLabel(1).ok());
  const Result<int> over = oracle.QueryLabel(2);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
}

TEST(OracleTest, OutOfRangeRejected) {
  const Dataset task = SmallTask();
  LabelOracle oracle(task, 2);
  EXPECT_FALSE(oracle.QueryLabel(task.size()).ok());
}

TEST(OracleTest, FreeRevealSkipsBudget) {
  const Dataset task = SmallTask();
  LabelOracle oracle(task, 1);
  const Result<int> label = oracle.RevealFree(3);
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(oracle.budget_remaining(), 1u);
  EXPECT_EQ(oracle.queries_used(), 0u);
  EXPECT_TRUE(oracle.IsLabeled(3));
  EXPECT_FALSE(oracle.RevealFree(3).ok());
}

TEST(OracleTest, UnlabeledIndicesTrackState) {
  const Dataset task = SmallTask(5);
  LabelOracle oracle(task, 5);
  ASSERT_TRUE(oracle.QueryLabel(1).ok());
  ASSERT_TRUE(oracle.QueryLabel(3).ok());
  EXPECT_EQ(oracle.UnlabeledIndices(), (std::vector<std::size_t>{0, 2, 4}));
}

// ------------------------------------------------------------- Selection

TEST(SelectionTest, MinMaxNormalizeRange) {
  const std::vector<double> scores = {1.0, 5.0, 3.0};
  const std::vector<double> norm = MinMaxNormalize(scores);
  EXPECT_NEAR(norm[0], 0.0, 1e-12);
  EXPECT_NEAR(norm[1], 1.0, 1e-12);
  EXPECT_NEAR(norm[2], 0.5, 1e-12);
}

TEST(SelectionTest, MinMaxNormalizeConstant) {
  const std::vector<double> norm = MinMaxNormalize({2.0, 2.0, 2.0});
  for (double v : norm) EXPECT_EQ(v, 0.5);
}

TEST(SelectionTest, MinMaxNormalizeEmpty) {
  EXPECT_TRUE(MinMaxNormalize({}).empty());
}

TEST(SelectionTest, MinMaxNormalizeAffineInvariance) {
  // Normalize(a*x + b) == Normalize(x) for a > 0 — the property that makes
  // the log-shift in the density scorer selection-neutral.
  Rng rng(2);
  std::vector<double> x(50);
  for (double& v : x) v = rng.Gaussian();
  const std::vector<double> base = MinMaxNormalize(x);
  std::vector<double> transformed(x);
  for (double& v : transformed) v = 3.7 * v + 11.0;
  const std::vector<double> after = MinMaxNormalize(transformed);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(base[i], after[i], 1e-9);
  }
}

TEST(SelectionTest, TopKOrdersDescending) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  EXPECT_EQ(TopK(scores, 2), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(TopK(scores, 10).size(), 4u);
}

TEST(SelectionTest, TopKStableTies) {
  const std::vector<double> scores = {1.0, 1.0, 1.0};
  EXPECT_EQ(TopK(scores, 2), (std::vector<std::size_t>{0, 1}));
}

TEST(BernoulliSelectTest, RespectsBatchSizeAndUniqueness) {
  Rng rng(3);
  std::vector<double> omega(100);
  for (double& w : omega) w = rng.Uniform();
  const std::vector<std::size_t> picked = BernoulliSelect(omega, 2.0, 30, &rng);
  EXPECT_EQ(picked.size(), 30u);
  const std::set<std::size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : picked) EXPECT_LT(idx, 100u);
}

TEST(BernoulliSelectTest, SmallPoolReturnsAll) {
  Rng rng(4);
  const std::vector<double> omega = {0.5, 0.1, 0.9};
  const std::vector<std::size_t> picked = BernoulliSelect(omega, 1.0, 10, &rng);
  EXPECT_EQ(picked.size(), 3u);
}

TEST(BernoulliSelectTest, ZeroAlphaFallsBackDeterministically) {
  Rng rng(5);
  const std::vector<double> omega = {0.9, 0.5, 0.1, 0.7};
  const std::vector<std::size_t> picked = BernoulliSelect(omega, 0.0, 2, &rng);
  // No trial ever fires; the fallback fills in descending omega order.
  EXPECT_EQ(picked, (std::vector<std::size_t>{0, 3}));
}

TEST(BernoulliSelectTest, PrefersHighProbabilityCandidates) {
  // Across many trials, omega = 1 candidates are accepted far more often
  // than omega ~ 0 candidates.
  Rng rng(6);
  std::vector<double> omega(20, 0.02);
  for (std::size_t i = 0; i < 5; ++i) omega[i] = 1.0;
  std::size_t high_hits = 0, low_hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    for (std::size_t idx : BernoulliSelect(omega, 1.0, 5, &rng)) {
      (idx < 5 ? high_hits : low_hits) += 1;
    }
  }
  EXPECT_GT(high_hits, low_hits * 3);
}

TEST(BernoulliSelectTest, HugeAlphaActsGreedy) {
  Rng rng(7);
  const std::vector<double> omega = {0.01, 0.9, 0.5};
  // alpha large enough that every probability saturates to 1: candidates
  // are accepted in descending omega order.
  const std::vector<std::size_t> picked =
      BernoulliSelect(omega, 1e6, 2, &rng);
  EXPECT_EQ(picked, (std::vector<std::size_t>{1, 2}));
}

TEST(BernoulliSelectTest, EmptyPool) {
  Rng rng(8);
  EXPECT_TRUE(BernoulliSelect({}, 1.0, 5, &rng).empty());
}

TEST(SelectionTest, TopKNanScoresOrderLast) {
  // NaN scores sort after every finite score (treated as -inf, stable by
  // index). The raw `a > b` comparator was not a strict weak ordering on
  // NaN input — this is the regression test for that sanitization.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> scores = {nan, 1.0, nan, 2.0};
  EXPECT_EQ(TopK(scores, 3), (std::vector<std::size_t>{3, 1, 0}));
  EXPECT_EQ(TopK(scores, 10).size(), 4u);
}

TEST(BernoulliSelectTest, NanOmegaVisitsLastAndNeverFires) {
  Rng rng(9);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> omega = {0.2, nan, 0.9, nan, 0.5};
  // Saturating alpha accepts every candidate with a well-defined
  // probability on the first pass (descending omega: 2, 4, 0); the NaN
  // candidates have trial probability 0 and only enter through the
  // deterministic exhaustion fallback, in their sorted (index) order.
  const std::vector<std::size_t> picked =
      BernoulliSelect(omega, 1e9, 5, &rng);
  EXPECT_EQ(picked, (std::vector<std::size_t>{2, 4, 0, 1, 3}));
}

TEST(BernoulliSelectTest, ScratchReuseMatchesFreshCalls) {
  // Same seed with and without a reused scratch must pick identically.
  const std::vector<double> omega = {0.7, 0.1, 0.9, 0.4, 0.6, 0.2};
  SelectionScratch scratch;
  Rng fresh(21), reused(21);
  for (int round = 0; round < 5; ++round) {
    const std::vector<std::size_t> a =
        BernoulliSelect(omega, 1.5, 3, &fresh);
    const std::vector<std::size_t> b =
        BernoulliSelect(omega, 1.5, 3, &reused, &scratch);
    EXPECT_EQ(a, b) << "round " << round;
  }
}

TEST(SelectionTest, MinMaxNormalizeIntoReusesBuffer) {
  std::vector<double> out;
  MinMaxNormalizeInto({1.0, 3.0, 2.0}, &out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  const double* prev = out.data();
  MinMaxNormalizeInto({5.0, 6.0}, &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.data(), prev);  // capacity retained, no reallocation
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

// ------------------------------------------------------------- Evaluator

TEST(EvaluatorTest, PerfectModelMetrics) {
  // A task whose labels are exactly determined by the sign of feature 0,
  // evaluated by a hand-built "model"... easier: evaluate a trained model
  // on its own training data after hard separation. Instead, construct a
  // task with labels equal to a threshold on feature 0 and check a model
  // that learned it approximately has high accuracy and finite metrics.
  const Dataset task = SmallTask(200, 5);
  Rng rng(9);
  MlpConfig config;
  config.input_dim = 4;
  config.hidden_dims = {8};
  MlpClassifier model(config, &rng);
  const Result<TaskMetrics> metrics =
      EvaluateOnTask(model, task, FairnessNotion::kDdp);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics.value().accuracy, 0.0);
  EXPECT_LE(metrics.value().accuracy, 1.0);
  EXPECT_GE(metrics.value().ddp, 0.0);
  EXPECT_GE(metrics.value().nll, 0.0);
  EXPECT_GE(metrics.value().fairness_violation, 0.0);
  EXPECT_EQ(metrics.value().environment, 0);
}

TEST(EvaluatorTest, RejectsEmptyTask) {
  Rng rng(10);
  MlpConfig config;
  config.input_dim = 4;
  MlpClassifier model(config, &rng);
  Dataset empty(4);
  EXPECT_FALSE(EvaluateOnTask(model, empty, FairnessNotion::kDdp).ok());
}

TEST(EvaluatorTest, SummarizeAverages) {
  TaskMetrics a, b;
  a.accuracy = 0.8;
  a.ddp = 0.2;
  a.eod = 0.1;
  a.mi = 0.04;
  a.seconds = 1.0;
  a.queries_used = 100;
  b.accuracy = 0.6;
  b.ddp = 0.4;
  b.eod = 0.3;
  b.mi = 0.08;
  b.seconds = 2.0;
  b.queries_used = 50;
  const StreamSummary s = Summarize({a, b});
  EXPECT_NEAR(s.mean_accuracy, 0.7, 1e-12);
  EXPECT_NEAR(s.mean_ddp, 0.3, 1e-12);
  EXPECT_NEAR(s.mean_eod, 0.2, 1e-12);
  EXPECT_NEAR(s.mean_mi, 0.06, 1e-12);
  EXPECT_NEAR(s.total_seconds, 3.0, 1e-12);
  EXPECT_EQ(s.total_queries, 150u);
}

TEST(EvaluatorTest, SummarizeEmpty) {
  const StreamSummary s = Summarize({});
  EXPECT_EQ(s.mean_accuracy, 0.0);
  EXPECT_EQ(s.total_queries, 0u);
}

// Regression: before the undefined-metric fix, a task whose samples all
// share one sensitive group reported DDP = EOD = 0.0 — a failed
// computation masquerading as perfect fairness.
TEST(EvaluatorTest, SingleGroupTaskReportsUndefinedNotZero) {
  Dataset task(2);
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    Example e;
    e.label = i % 2;
    e.sensitive = 1;  // every sample in group +1
    e.x = {rng.Gaussian(), rng.Gaussian()};
    ASSERT_TRUE(task.Append(e).ok());
  }
  Rng model_rng(4);
  MlpConfig config;
  config.input_dim = 2;
  config.hidden_dims = {4};
  MlpClassifier model(config, &model_rng);
  const Result<TaskMetrics> metrics =
      EvaluateOnTask(model, task, FairnessNotion::kDdp);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const TaskMetrics& m = metrics.value();
  EXPECT_FALSE(m.ddp_defined);
  EXPECT_TRUE(std::isnan(m.ddp));
  EXPECT_FALSE(m.eod_defined);
  EXPECT_TRUE(std::isnan(m.eod));
  // MI of a one-group task is 0 (the joint factorizes), i.e. defined.
  EXPECT_TRUE(m.mi_defined);
  EXPECT_EQ(m.mi, 0.0);
  EXPECT_TRUE(m.AnyMetricUndefined());
}

// Undefined tasks are excluded from the stream means rather than dragged
// in as zeros, and are counted explicitly.
TEST(EvaluatorTest, SummarizeExcludesUndefinedTasks) {
  TaskMetrics ok1, ok2, degenerate;
  ok1.ddp = 0.2;
  ok1.eod = 0.1;
  ok1.mi = 0.04;
  ok2.ddp = 0.4;
  ok2.eod = 0.3;
  ok2.mi = 0.08;
  degenerate.ddp = std::numeric_limits<double>::quiet_NaN();
  degenerate.ddp_defined = false;
  degenerate.eod = std::numeric_limits<double>::quiet_NaN();
  degenerate.eod_defined = false;
  degenerate.mi = 0.0;  // MI stays defined on single-group tasks
  const StreamSummary s = Summarize({ok1, degenerate, ok2});
  EXPECT_NEAR(s.mean_ddp, 0.3, 1e-12);
  EXPECT_NEAR(s.mean_eod, 0.2, 1e-12);
  EXPECT_NEAR(s.mean_mi, 0.04, 1e-12);
  EXPECT_EQ(s.ddp_defined_tasks, 2u);
  EXPECT_EQ(s.eod_defined_tasks, 2u);
  EXPECT_EQ(s.mi_defined_tasks, 3u);
  EXPECT_EQ(s.undefined_metric_tasks, 1u);
}

// When NO task defines a metric, its mean is NaN — never a fabricated 0.
TEST(EvaluatorTest, SummarizeAllUndefinedMeanIsNan) {
  TaskMetrics m;
  m.ddp = std::numeric_limits<double>::quiet_NaN();
  m.ddp_defined = false;
  const StreamSummary s = Summarize({m});
  EXPECT_TRUE(std::isnan(s.mean_ddp));
  EXPECT_EQ(s.ddp_defined_tasks, 0u);
  EXPECT_EQ(s.undefined_metric_tasks, 1u);
}

}  // namespace
}  // namespace faction
