#include <memory>

#include "core/presets.h"
#include "data/streams.h"
#include "gtest/gtest.h"

namespace faction {
namespace {

// Small-but-real end-to-end runs: every method drives the full Algorithm 1
// protocol over a miniature stream.

ExperimentDefaults TinyDefaults() {
  ExperimentDefaults d;
  d.budget_per_task = 40;
  d.acquisition_batch = 20;
  d.warm_start = 40;
  d.hidden_dims = {24, 8};
  d.epochs = 2;
  d.train_batch = 32;
  return d;
}

std::vector<Dataset> TinyStream(std::uint64_t seed = 5) {
  StationaryConfig config;
  config.scale.samples_per_task = 120;
  config.scale.seed = seed;
  config.dim = 8;
  config.num_tasks = 3;
  Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return stream.value();
}

class MethodEndToEnd : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodEndToEnd, RunsAndProducesMetrics) {
  const std::vector<Dataset> tasks = TinyStream();
  const Result<RunResult> run =
      RunMethodOnStream(GetParam(), tasks, TinyDefaults(), 11);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const RunResult& r = run.value();
  EXPECT_EQ(r.per_task.size(), tasks.size());
  for (const TaskMetrics& m : r.per_task) {
    EXPECT_GE(m.accuracy, 0.0);
    EXPECT_LE(m.accuracy, 1.0);
    EXPECT_GE(m.ddp, 0.0);
    EXPECT_LE(m.ddp, 1.0);
    EXPECT_GE(m.eod, 0.0);
    EXPECT_LE(m.eod, 1.0);
    EXPECT_GE(m.mi, 0.0);
  }
  // Every task consumed its full budget (pool is far larger than B).
  for (const TaskMetrics& m : r.per_task) {
    EXPECT_EQ(m.queries_used, TinyDefaults().budget_per_task);
  }
  EXPECT_GT(r.total_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodEndToEnd,
    ::testing::Values("FACTION", "FAL", "FAL-CUR", "Decoupled", "QuFUR",
                      "DDU", "Entropy-AL", "Random", "w/o fair select",
                      "w/o fair reg", "w/o fair select & fair reg"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(IntegrationTest, LearningBeatsChanceOnStationaryStream) {
  const std::vector<Dataset> tasks = TinyStream(9);
  const Result<RunResult> run =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 3);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // By the last task the model has seen labeled data from two prior tasks
  // of the same distribution; it must beat chance comfortably.
  EXPECT_GT(run.value().per_task.back().accuracy, 0.65);
}

TEST(IntegrationTest, DeterministicGivenSeed) {
  const std::vector<Dataset> tasks = TinyStream(13);
  const Result<RunResult> a =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 17);
  const Result<RunResult> b =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 17);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().per_task.size(), b.value().per_task.size());
  for (std::size_t i = 0; i < a.value().per_task.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value().per_task[i].accuracy,
                     b.value().per_task[i].accuracy);
    EXPECT_DOUBLE_EQ(a.value().per_task[i].ddp, b.value().per_task[i].ddp);
  }
}

TEST(IntegrationTest, SeedChangesRun) {
  const std::vector<Dataset> tasks = TinyStream(13);
  const Result<RunResult> a =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 1);
  const Result<RunResult> b =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.value().per_task.size(); ++i) {
    if (a.value().per_task[i].accuracy != b.value().per_task[i].accuracy) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(IntegrationTest, RegretTrackingProducesIncrements) {
  const std::vector<Dataset> tasks = TinyStream(21);
  ExperimentDefaults d = TinyDefaults();
  Result<std::unique_ptr<QueryStrategy>> strategy = MakeStrategy("FACTION", d);
  ASSERT_TRUE(strategy.ok());
  OnlineLearnerConfig config =
      MakeLearnerConfig(d, tasks[0].dim(), "FACTION", 5);
  config.track_regret = true;
  OnlineLearner learner(config, strategy.value().get());
  const Result<RunResult> run = learner.Run(tasks);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().regret_increments.size(), tasks.size());
  for (double inc : run.value().regret_increments) EXPECT_GE(inc, 0.0);
  EXPECT_GE(run.value().cumulative_regret, 0.0);
}

TEST(IntegrationTest, UnknownMethodRejected) {
  const std::vector<Dataset> tasks = TinyStream(23);
  const Result<RunResult> run =
      RunMethodOnStream("NoSuchMethod", tasks, TinyDefaults(), 1);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
}

TEST(IntegrationTest, MismatchedModelDimensionRejected) {
  const std::vector<Dataset> tasks = TinyStream(25);
  ExperimentDefaults d = TinyDefaults();
  Result<std::unique_ptr<QueryStrategy>> strategy = MakeStrategy("Random", d);
  ASSERT_TRUE(strategy.ok());
  OnlineLearnerConfig config =
      MakeLearnerConfig(d, tasks[0].dim() + 1, "Random", 5);
  OnlineLearner learner(config, strategy.value().get());
  EXPECT_FALSE(learner.Run(tasks).ok());
}

}  // namespace
}  // namespace faction
