#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace faction {
namespace {

// Builds a random SPD matrix A = B B^T + n*I.
Matrix RandomSpd(std::size_t n, Rng* rng) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng->Gaussian();
  Matrix a = MatMulBt(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(CholeskyTest, ReconstructsMatrix) {
  Rng rng(2);
  const Matrix a = RandomSpd(6, &rng);
  const Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  const Matrix recon = MatMulBt(l.value(), l.value());
  EXPECT_LT(MaxAbsDiff(a, recon), 1e-9);
}

TEST(CholeskyTest, LowerTriangular) {
  Rng rng(3);
  const Matrix a = RandomSpd(5, &rng);
  const Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_EQ(l.value()(i, j), 0.0);
    }
  }
}

TEST(CholeskyTest, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  const Result<Matrix> l = Cholesky(a);
  ASSERT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kNumericalError);
}

TEST(SolveTest, ForwardAndBackSolve) {
  Rng rng(5);
  const Matrix a = RandomSpd(7, &rng);
  const Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  std::vector<double> x_true(7);
  for (double& v : x_true) v = rng.Gaussian();
  // b = A x
  std::vector<double> b(7, 0.0);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 7; ++j) b[i] += a(i, j) * x_true[j];
  }
  const std::vector<double> x = CholeskySolve(l.value(), b);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(SolveTest, IdentitySolveIsIdentity) {
  const Matrix id = Matrix::Identity(4);
  const Result<Matrix> l = Cholesky(id);
  ASSERT_TRUE(l.ok());
  const std::vector<double> b = {1, 2, 3, 4};
  EXPECT_EQ(CholeskySolve(l.value(), b), b);
}

TEST(LogDetTest, MatchesKnownValue) {
  // diag(4, 9): det = 36, logdet = log(36).
  const Matrix a = {{4.0, 0.0}, {0.0, 9.0}};
  const Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(LogDetFromCholesky(l.value()), std::log(36.0), 1e-12);
}

TEST(SpdInverseTest, ProducesInverse) {
  Rng rng(7);
  const Matrix a = RandomSpd(5, &rng);
  const Result<Matrix> inv = SpdInverse(a);
  ASSERT_TRUE(inv.ok());
  const Matrix prod = MatMul(a, inv.value());
  EXPECT_LT(MaxAbsDiff(prod, Matrix::Identity(5)), 1e-8);
}

TEST(SpdInverseTest, FailsOnIndefinite) {
  const Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_FALSE(SpdInverse(a).ok());
}

TEST(PowerIterationTest, DiagonalMatrix) {
  Rng rng(11);
  const Matrix w = {{3.0, 0.0}, {0.0, 1.0}};
  const SpectralEstimate est = PowerIteration(w, {}, 50, &rng);
  EXPECT_NEAR(est.sigma, 3.0, 1e-6);
  // Dominant singular direction is e0.
  EXPECT_NEAR(std::fabs(est.u[0]), 1.0, 1e-4);
}

TEST(PowerIterationTest, MatchesFrobeniusForRankOne) {
  // Rank-one matrix u v^T has sigma = |u| * |v|.
  const Matrix w = {{2.0, 4.0}, {1.0, 2.0}};  // (2,1)^T (1,2)
  Rng rng(13);
  const SpectralEstimate est = PowerIteration(w, {}, 50, &rng);
  EXPECT_NEAR(est.sigma, std::sqrt(5.0) * std::sqrt(5.0), 1e-6);
}

TEST(PowerIterationTest, WarmStartConverges) {
  Rng rng(17);
  Matrix w(6, 4);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.Gaussian();
  SpectralEstimate est = PowerIteration(w, {}, 1, &rng);
  // Iterating with warm starts should be monotone-ish toward sigma_max;
  // after many warm-started single steps it matches a long cold run.
  for (int i = 0; i < 60; ++i) est = PowerIteration(w, est.u, 1, &rng);
  const SpectralEstimate cold = PowerIteration(w, {}, 200, &rng);
  EXPECT_NEAR(est.sigma, cold.sigma, 1e-6);
}

TEST(PowerIterationTest, SigmaBoundsSpectralScaling) {
  Rng rng(19);
  Matrix w(5, 5);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.Gaussian();
  const SpectralEstimate est = PowerIteration(w, {}, 100, &rng);
  // sigma is at least the 2-norm of any row (action on a basis vector),
  // and at most the Frobenius norm.
  double max_row = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    max_row = std::max(max_row, Norm2(w.Row(i)));
  }
  EXPECT_GE(est.sigma + 1e-9, max_row);
  EXPECT_LE(est.sigma, std::sqrt(FrobeniusNorm2(w)) + 1e-9);
}

TEST(PowerIterationTest, EmptyMatrix) {
  Rng rng(23);
  const Matrix w;
  const SpectralEstimate est = PowerIteration(w, {}, 5, &rng);
  EXPECT_EQ(est.sigma, 0.0);
}

TEST(PowerIterationTest, ZeroMatrixGivesZeroSigma) {
  Rng rng(29);
  const Matrix w(3, 3);
  const SpectralEstimate est = PowerIteration(w, {}, 10, &rng);
  EXPECT_NEAR(est.sigma, 0.0, 1e-12);
}

}  // namespace
}  // namespace faction
