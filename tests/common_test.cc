#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "gtest/gtest.h"

namespace faction {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad dim");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kInternal,
        StatusCode::kNumericalError, StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FACTION_ASSIGN_OR_RETURN(int h, Half(x));
  FACTION_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  Result<int> bad = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
  for (std::uint64_t v : seen) EXPECT_LT(v, 5u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(29);
  std::vector<std::size_t> perm;
  rng.Permutation(50, &perm);
  ASSERT_EQ(perm.size(), 50u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(RngTest, PermutationEmptyAndSingleton) {
  Rng rng(31);
  std::vector<std::size_t> perm;
  rng.Permutation(0, &perm);
  EXPECT_TRUE(perm.empty());
  rng.Permutation(1, &perm);
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0u);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(41);
  const std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Categorical(weights));
  EXPECT_GT(seen.size(), 1u);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(43);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.NextU64() != child.NextU64()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, RunningStatMatchesDirect) {
  RunningStat stat;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) stat.Add(x);
  EXPECT_EQ(stat.count(), xs.size());
  EXPECT_NEAR(stat.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(stat.stddev(), StdDev(xs), 1e-12);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({5.0}), 0.0);
  RunningStat stat;
  EXPECT_EQ(stat.variance(), 0.0);
  stat.Add(2.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.mean(), 2.0);
}

TEST(StatsTest, OlsSlopeRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 1.0);
  }
  EXPECT_NEAR(OlsSlope(x, y), 3.0, 1e-12);
}

TEST(StatsTest, OlsSlopeDegenerate) {
  EXPECT_EQ(OlsSlope({1.0}, {2.0}), 0.0);
  EXPECT_EQ(OlsSlope({2.0, 2.0, 2.0}, {1.0, 5.0, 9.0}), 0.0);
}

TEST(StatsTest, OlsSlopeLogLogExponent) {
  // y = c * t^0.5 should fit slope 0.5 in log-log space.
  std::vector<double> lx, ly;
  for (int t = 1; t <= 64; t *= 2) {
    lx.push_back(std::log(static_cast<double>(t)));
    ly.push_back(std::log(2.0 * std::sqrt(static_cast<double>(t))));
  }
  EXPECT_NEAR(OlsSlope(lx, ly), 0.5, 1e-9);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, PrintAligned) {
  Table t({"method", "acc"});
  t.AddRow({"FACTION", "0.83"});
  t.AddRow({"Random", "0.81"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("FACTION"), std::string::npos);
  EXPECT_NE(out.find("| method"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(TableTest, RowPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TableTest, CsvQuoting) {
  Table t({"name", "note"});
  t.AddRow({"x,y", "say \"hi\""});
  std::ostringstream os;
  t.PrintCsv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatCell(0.12345, 2), "0.12");
  EXPECT_EQ(FormatCell(1.0, 0), "1");
  EXPECT_EQ(FormatMeanStd(0.5, 0.25, 2), "0.50 ± 0.25");
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

}  // namespace
}  // namespace faction
