#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "common/telemetry.h"
#include "data/streams.h"
#include "gtest/gtest.h"
#include "stream/drift.h"
#include "stream/online_learner.h"
#include "core/presets.h"

namespace faction {
namespace {

// ---------------------------------------------------------- DriftDetector

TEST(DriftDetectorTest, NoFlagOnStableSignal) {
  DriftDetector detector;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(detector.Observe(rng.Gaussian(-10.0, 0.5)));
  }
  EXPECT_EQ(detector.history(), 50u);
}

TEST(DriftDetectorTest, FlagsAbruptDrop) {
  DriftDetector detector;
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    ASSERT_FALSE(detector.Observe(rng.Gaussian(-10.0, 0.5)));
  }
  EXPECT_TRUE(detector.Observe(-40.0));
  // Default re-arm (kResetOnFire): the pre-drift history is dropped and the
  // statistics restart from the triggering value.
  EXPECT_EQ(detector.history(), 1u);
  EXPECT_DOUBLE_EQ(detector.mean(), -40.0);
}

TEST(DriftDetectorTest, SustainedShiftFiresOnceUnderResetOnFire) {
  // Regression: without re-arm semantics the detector kept its pre-shift
  // statistics forever, so a sustained distribution shift fired on every
  // arrival after the first. Count drift.fired to pin single-firing.
  Telemetry::Enable();  // drift.fired only counts through the registry
  DriftDetector detector;  // default rearm = kResetOnFire
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    ASSERT_FALSE(detector.Observe(rng.Gaussian(-10.0, 0.5)));
  }
  const std::uint64_t fired_before = TelemetryCounterValue("drift.fired");
  int flagged = 0;
  // Sustained shift: the statistic settles at a new, much lower level.
  for (int i = 0; i < 40; ++i) {
    if (detector.Observe(-40.0)) ++flagged;
  }
  EXPECT_EQ(flagged, 1);
  EXPECT_EQ(TelemetryCounterValue("drift.fired") - fired_before, 1u);
  // The detector has adapted to the new regime...
  EXPECT_NEAR(detector.mean(), -40.0, 1.0);
  // ...and still fires on the *next* shift.
  EXPECT_TRUE(detector.Observe(-80.0));
}

TEST(DriftDetectorTest, SustainedShiftFiresEveryArrivalUnderManual) {
  // The pre-fix behavior, now opt-in: with kManual the caller owns
  // re-arming, and forgetting Reset() means every post-shift arrival fires.
  DriftDetectorConfig config;
  config.rearm = DriftReArm::kManual;
  DriftDetector detector(config);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    ASSERT_FALSE(detector.Observe(rng.Gaussian(-10.0, 0.5)));
  }
  int flagged = 0;
  for (int i = 0; i < 40; ++i) {
    if (detector.Observe(-40.0)) ++flagged;
  }
  EXPECT_EQ(flagged, 40);
  // History froze at the pre-shift regime.
  EXPECT_EQ(detector.history(), 30u);
}

TEST(DriftDetectorTest, CooldownSuppressesAndAbsorbs) {
  DriftDetectorConfig config;
  config.rearm = DriftReArm::kCooldown;
  config.cooldown = 5;
  DriftDetector detector(config);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    ASSERT_FALSE(detector.Observe(rng.Gaussian(-10.0, 0.5)));
  }
  EXPECT_TRUE(detector.Observe(-40.0));
  EXPECT_EQ(detector.cooldown_remaining(), 5u);
  // Within the window, shifted values are absorbed without firing.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(detector.Observe(-40.0));
  }
  EXPECT_EQ(detector.cooldown_remaining(), 0u);
  // The folded shift widened the spread enough that the settled regime no
  // longer trips the threshold.
  int flagged = 0;
  for (int i = 0; i < 20; ++i) {
    if (detector.Observe(-40.0)) ++flagged;
  }
  EXPECT_EQ(flagged, 0);
}

TEST(DriftDetectorTest, NoDetectionBeforeMinHistory) {
  DriftDetectorConfig config;
  config.min_history = 5;
  DriftDetector detector(config);
  EXPECT_FALSE(detector.Observe(-10.0));
  EXPECT_FALSE(detector.Observe(-10.0));
  EXPECT_FALSE(detector.Observe(-1000.0));  // still warming up
}

TEST(DriftDetectorTest, UpwardJumpIsNotDrift) {
  DriftDetector detector;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) detector.Observe(rng.Gaussian(-10.0, 0.5));
  // Density going *up* means the data got more familiar — never a drift.
  EXPECT_FALSE(detector.Observe(100.0));
}

TEST(DriftDetectorTest, MinStdGuardsConstantHistory) {
  DriftDetectorConfig config;
  config.threshold = 3.0;
  config.min_std = 1.0;
  DriftDetector detector(config);
  for (int i = 0; i < 10; ++i) detector.Observe(-10.0);  // zero variance
  // A drop of 2 is within 3 * min_std = 3: no flag.
  EXPECT_FALSE(detector.Observe(-12.0));
  // A drop of 5 exceeds it.
  EXPECT_TRUE(detector.Observe(-15.0));
}

TEST(DriftDetectorTest, ResetForgets) {
  DriftDetector detector;
  for (int i = 0; i < 10; ++i) detector.Observe(-10.0);
  detector.Reset();
  EXPECT_EQ(detector.history(), 0u);
  EXPECT_FALSE(detector.Observe(-1000.0));  // fresh warm-up
}

// --------------------------------------------------------- MeanLogDensity

TEST(MeanLogDensityTest, ShiftedBatchScoresLower) {
  // Fit an estimator on centered data, then compare the statistic on an
  // in-distribution batch vs a shifted one.
  Rng rng(4);
  Matrix features(240, 3);
  std::vector<int> labels, sensitive;
  for (std::size_t i = 0; i < 240; ++i) {
    for (std::size_t j = 0; j < 3; ++j) features(i, j) = rng.Gaussian();
    labels.push_back(static_cast<int>(i % 2));
    sensitive.push_back((i / 2) % 2 == 0 ? 1 : -1);
  }
  CovarianceConfig config;
  const Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  ASSERT_TRUE(est.ok());
  Matrix in_dist(50, 3), shifted(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      in_dist(i, j) = rng.Gaussian();
      shifted(i, j) = rng.Gaussian(8.0, 1.0);
    }
  }
  EXPECT_GT(MeanLogDensity(est.value(), in_dist),
            MeanLogDensity(est.value(), shifted) + 10.0);
}

TEST(MeanLogDensityTest, DetectsEnvironmentChangeOnStream) {
  // End-to-end: a detector fed per-task mean log-densities flags the task
  // where the environment rotates.
  RcmnistConfig config;
  config.scale.samples_per_task = 300;
  config.scale.seed = 9;
  config.rotations_deg = {0.0, 90.0};  // one dramatic shift
  config.biases = {0.7, 0.7};
  const Result<std::vector<Dataset>> stream = MakeRcmnistStream(config);
  ASSERT_TRUE(stream.ok());
  // Fit the estimator on environment 0's first task (raw features as z).
  const Dataset& base = stream.value()[0];
  CovarianceConfig cov;
  const Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
      base.features(), base.labels(), base.sensitive(), cov);
  ASSERT_TRUE(est.ok());
  DriftDetectorConfig dconfig;
  dconfig.threshold = 2.0;
  dconfig.min_history = 2;
  DriftDetector detector(dconfig);
  // Tasks 0-2 are environment 0: stable statistic. Task 3 rotates by 90
  // degrees: the statistic collapses and the detector fires.
  bool flagged_stable = false;
  for (int t = 0; t < 3; ++t) {
    flagged_stable |= detector.Observe(
        MeanLogDensity(est.value(), stream.value()[t].features()));
  }
  EXPECT_FALSE(flagged_stable);
  EXPECT_TRUE(detector.Observe(
      MeanLogDensity(est.value(), stream.value()[3].features())));
}

// ------------------------------------------------------------- Pool cap

TEST(PoolCapTest, BoundedPoolStillLearns) {
  StationaryConfig sconfig;
  sconfig.scale.samples_per_task = 150;
  sconfig.scale.seed = 11;
  sconfig.dim = 6;
  sconfig.num_tasks = 4;
  const Result<std::vector<Dataset>> stream = MakeStationaryStream(sconfig);
  ASSERT_TRUE(stream.ok());

  ExperimentDefaults defaults;
  defaults.budget_per_task = 40;
  defaults.acquisition_batch = 20;
  defaults.warm_start = 40;
  defaults.hidden_dims = {12, 6};
  defaults.epochs = 2;
  Result<std::unique_ptr<QueryStrategy>> strategy =
      MakeStrategy("Random", defaults);
  ASSERT_TRUE(strategy.ok());
  OnlineLearnerConfig config = MakeLearnerConfig(defaults, 6, "Random", 3);
  config.max_pool_size = 80;  // far below 40 + 4*40 unbounded growth
  OnlineLearner learner(config, strategy.value().get());
  const Result<RunResult> run = learner.Run(stream.value());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Learning still happens on the bounded window.
  EXPECT_GT(run.value().per_task.back().accuracy, 0.6);
}

TEST(PoolCapTest, CapZeroIsUnlimited) {
  StationaryConfig sconfig;
  sconfig.scale.samples_per_task = 120;
  sconfig.scale.seed = 13;
  sconfig.dim = 6;
  sconfig.num_tasks = 2;
  const Result<std::vector<Dataset>> stream = MakeStationaryStream(sconfig);
  ASSERT_TRUE(stream.ok());
  ExperimentDefaults defaults;
  defaults.budget_per_task = 20;
  defaults.acquisition_batch = 10;
  defaults.warm_start = 20;
  defaults.hidden_dims = {12, 6};
  defaults.epochs = 1;
  Result<std::unique_ptr<QueryStrategy>> strategy =
      MakeStrategy("Random", defaults);
  ASSERT_TRUE(strategy.ok());
  OnlineLearnerConfig config = MakeLearnerConfig(defaults, 6, "Random", 5);
  config.max_pool_size = 0;
  OnlineLearner learner(config, strategy.value().get());
  EXPECT_TRUE(learner.Run(stream.value()).ok());
}

}  // namespace
}  // namespace faction
