// Tests for the paper's extension features: the generalized multi-class /
// multi-valued-sensitive density estimator (Sec. IV-B's future work), the
// individual-fairness penalty (Sec. IV-H), the single-sample streaming
// machinery (Sec. IV-D), and model serialization.
#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "density/grouped_density.h"
#include "fairness/individual.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "stream/incremental.h"
#include "tensor/ops.h"

namespace faction {
namespace {

// ------------------------------------------- GroupedDensityEstimator

// Pool with 3 classes and 3 sensitive values on a 2-d grid.
void BuildMultiPool(std::size_t per_cell, Rng* rng, Matrix* features,
                    std::vector<int>* labels, std::vector<int>* sensitive) {
  const std::vector<int> groups = {0, 1, 2};
  features->Resize(per_cell * 9, 2);
  labels->clear();
  sensitive->clear();
  std::size_t row = 0;
  for (int y = 0; y < 3; ++y) {
    for (int s : groups) {
      for (std::size_t i = 0; i < per_cell; ++i) {
        (*features)(row, 0) = rng->Gaussian(y * 5.0, 0.5);
        (*features)(row, 1) = rng->Gaussian(s * 3.0, 0.5);
        labels->push_back(y);
        sensitive->push_back(s);
        ++row;
      }
    }
  }
}

TEST(GroupedDensityTest, FitsAllComponents) {
  Rng rng(1);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildMultiPool(40, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<GroupedDensityEstimator> est = GroupedDensityEstimator::Fit(
      features, labels, sensitive, 3, {0, 1, 2}, config);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_EQ(est.value().num_classes(), 3);
  double weight_sum = 0.0;
  for (int y = 0; y < 3; ++y) {
    for (int s : {0, 1, 2}) {
      EXPECT_TRUE(est.value().HasComponent(y, s));
      weight_sum += est.value().Weight(y, s);
    }
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-12);
}

TEST(GroupedDensityTest, ReducesToBinaryCase) {
  // With C = 2, S = {-1, +1}, the generalized Delta g equals the binary
  // |g(z|c,+1) - g(z|c,-1)|.
  Rng rng(2);
  Matrix features(200, 2);
  std::vector<int> labels, sensitive;
  for (std::size_t i = 0; i < 200; ++i) {
    const int y = i % 2;
    const int s = (i / 2) % 2 == 0 ? 1 : -1;
    features(i, 0) = rng.Gaussian(y * 4.0, 0.5);
    features(i, 1) = rng.Gaussian(s * 1.5, 0.5);
    labels.push_back(y);
    sensitive.push_back(s);
  }
  CovarianceConfig config;
  const Result<GroupedDensityEstimator> est = GroupedDensityEstimator::Fit(
      features, labels, sensitive, 2, {-1, 1}, config);
  ASSERT_TRUE(est.ok());
  const std::vector<double> z = {0.0, 1.0};
  const double direct =
      std::fabs(std::exp(est.value().LogComponentDensity(z, 0, 1)) -
                std::exp(est.value().LogComponentDensity(z, 0, -1)));
  EXPECT_NEAR(est.value().DeltaG(z, 0), direct, 1e-12);
}

TEST(GroupedDensityTest, DeltaGIsMaxPairwiseGap) {
  Rng rng(3);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildMultiPool(60, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<GroupedDensityEstimator> est = GroupedDensityEstimator::Fit(
      features, labels, sensitive, 3, {0, 1, 2}, config);
  ASSERT_TRUE(est.ok());
  // At group 0's center of class 1, group 0's density dwarfs group 2's.
  const std::vector<double> z = {5.0, 0.0};
  std::vector<double> densities;
  for (int s : {0, 1, 2}) {
    densities.push_back(
        std::exp(est.value().LogComponentDensity(z, 1, s)));
  }
  const double expect = *std::max_element(densities.begin(), densities.end()) -
                        *std::min_element(densities.begin(), densities.end());
  EXPECT_NEAR(est.value().DeltaG(z, 1), expect, 1e-12);
  EXPECT_GT(est.value().DeltaG(z, 1), 0.0);
}

TEST(GroupedDensityTest, LogDeltaGMatchesRawDomain) {
  Rng rng(4);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildMultiPool(60, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<GroupedDensityEstimator> est = GroupedDensityEstimator::Fit(
      features, labels, sensitive, 3, {0, 1, 2}, config);
  ASSERT_TRUE(est.ok());
  const std::vector<double> z = {5.0, 1.2};
  const double raw = est.value().DeltaG(z, 1);
  const double log_form = est.value().LogDeltaG(z, 1);
  if (raw > 0.0) {
    EXPECT_NEAR(std::log(raw), log_form, 1e-6);
  }
}

TEST(GroupedDensityTest, MarginalMixesAllComponents) {
  Rng rng(5);
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildMultiPool(40, &rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  const Result<GroupedDensityEstimator> est = GroupedDensityEstimator::Fit(
      features, labels, sensitive, 3, {0, 1, 2}, config);
  ASSERT_TRUE(est.ok());
  const std::vector<double> z = {5.0, 3.0};
  double mixture = 0.0;
  for (int y = 0; y < 3; ++y) {
    for (int s : {0, 1, 2}) {
      mixture += est.value().Weight(y, s) *
                 std::exp(est.value().LogComponentDensity(z, y, s));
    }
  }
  EXPECT_NEAR(std::exp(est.value().LogMarginalDensity(z)), mixture, 1e-9);
}

TEST(GroupedDensityTest, ValidationErrors) {
  CovarianceConfig config;
  Matrix features(4, 2);
  // Label out of range.
  EXPECT_FALSE(GroupedDensityEstimator::Fit(features, {0, 1, 2, 0},
                                            {0, 0, 1, 1}, 2, {0, 1}, config)
                   .ok());
  // Sensitive value not declared.
  EXPECT_FALSE(GroupedDensityEstimator::Fit(features, {0, 1, 0, 1},
                                            {0, 0, 7, 1}, 2, {0, 1}, config)
                   .ok());
  // Duplicate sensitive values.
  EXPECT_FALSE(GroupedDensityEstimator::Fit(features, {0, 1, 0, 1},
                                            {0, 0, 1, 1}, 2, {0, 0}, config)
                   .ok());
  // Too few classes.
  EXPECT_FALSE(GroupedDensityEstimator::Fit(features, {0, 0, 0, 0},
                                            {0, 0, 1, 1}, 1, {0, 1}, config)
                   .ok());
  // Empty input.
  EXPECT_FALSE(GroupedDensityEstimator::Fit(Matrix(0, 2), {}, {}, 2, {0, 1},
                                            config)
                   .ok());
}

TEST(GroupedDensityTest, MissingComponentHandled) {
  Rng rng(6);
  Matrix features(60, 2);
  std::vector<int> labels, sensitive;
  for (std::size_t i = 0; i < 60; ++i) {
    features(i, 0) = rng.Gaussian();
    features(i, 1) = rng.Gaussian();
    labels.push_back(static_cast<int>(i % 2));
    sensitive.push_back(0);  // group 1 never appears
  }
  CovarianceConfig config;
  const Result<GroupedDensityEstimator> est = GroupedDensityEstimator::Fit(
      features, labels, sensitive, 2, {0, 1}, config);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est.value().HasComponent(0, 1));
  const std::vector<double> z = {0.0, 0.0};
  // Gap against the missing group is the present group's density.
  EXPECT_NEAR(est.value().DeltaG(z, 0),
              std::exp(est.value().LogComponentDensity(z, 0, 0)), 1e-12);
}

// ------------------------------------------------- Individual fairness

TEST(IndividualFairnessTest, ZeroForConsistentTreatment) {
  // Identical inputs with identical logits: no penalty.
  Matrix inputs(4, 2, 1.0);
  Matrix logits(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    logits(i, 0) = 0.3;
    logits(i, 1) = 0.9;
  }
  IndividualFairnessConfig config;
  const Result<double> pen =
      IndividualFairnessPenalty(inputs, logits, config);
  ASSERT_TRUE(pen.ok());
  EXPECT_NEAR(pen.value(), 0.0, 1e-12);
}

TEST(IndividualFairnessTest, PenalizesInconsistentSimilarPairs) {
  // Two identical inputs with opposite confident predictions.
  Matrix inputs(2, 2, 0.0);
  Matrix logits(2, 2);
  logits(0, 0) = -4.0;
  logits(0, 1) = 4.0;
  logits(1, 0) = 4.0;
  logits(1, 1) = -4.0;
  IndividualFairnessConfig config;
  config.weight = 1.0;
  const Result<double> pen =
      IndividualFairnessPenalty(inputs, logits, config);
  ASSERT_TRUE(pen.ok());
  EXPECT_GT(pen.value(), 0.5);
}

TEST(IndividualFairnessTest, DistantPairsIgnored) {
  Matrix inputs(2, 2);
  inputs(1, 0) = 100.0;  // far apart
  Matrix logits(2, 2);
  logits(0, 1) = 4.0;
  logits(1, 0) = 4.0;
  IndividualFairnessConfig config;
  const Result<double> pen =
      IndividualFairnessPenalty(inputs, logits, config);
  ASSERT_TRUE(pen.ok());
  EXPECT_EQ(pen.value(), 0.0);
}

TEST(IndividualFairnessTest, GradientCheck) {
  Rng rng(7);
  Matrix inputs(5, 3);
  Matrix logits(5, 2);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs.data()[i] = rng.Gaussian(0.0, 0.5);
  }
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = rng.Gaussian();
  }
  IndividualFairnessConfig config;
  config.weight = 0.7;
  Matrix dlogits(5, 2, 0.0);
  const Result<double> pen =
      AddIndividualFairnessPenalty(inputs, logits, config, &dlogits);
  ASSERT_TRUE(pen.ok());
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix up = logits, down = logits;
    up.data()[i] += eps;
    down.data()[i] -= eps;
    const double pu = IndividualFairnessPenalty(inputs, up, config).value();
    const double pd =
        IndividualFairnessPenalty(inputs, down, config).value();
    EXPECT_NEAR(dlogits.data()[i], (pu - pd) / (2.0 * eps), 1e-6);
  }
}

TEST(IndividualFairnessTest, ValidationErrors) {
  IndividualFairnessConfig config;
  Matrix dlogits(2, 2, 0.0);
  // Non-binary logits.
  EXPECT_FALSE(AddIndividualFairnessPenalty(Matrix(2, 2), Matrix(2, 3),
                                            config, &dlogits)
                   .ok());
  // Row mismatch.
  EXPECT_FALSE(AddIndividualFairnessPenalty(Matrix(3, 2), Matrix(2, 2),
                                            config, &dlogits)
                   .ok());
  // Bad bandwidth.
  config.bandwidth = 0.0;
  EXPECT_FALSE(AddIndividualFairnessPenalty(Matrix(2, 2), Matrix(2, 2),
                                            config, &dlogits)
                   .ok());
}

// ------------------------------------------------------- Incremental

TEST(IncrementalNormalizerTest, TracksRange) {
  IncrementalNormalizer norm;
  EXPECT_EQ(norm.Normalize(5.0), 0.5);  // no observations yet
  norm.Observe(2.0);
  norm.Observe(6.0);
  norm.Observe(4.0);
  EXPECT_EQ(norm.count(), 3u);
  EXPECT_EQ(norm.min(), 2.0);
  EXPECT_EQ(norm.max(), 6.0);
  EXPECT_NEAR(norm.Normalize(4.0), 0.5, 1e-12);
  EXPECT_NEAR(norm.Normalize(2.0), 0.0, 1e-12);
  EXPECT_NEAR(norm.Normalize(6.0), 1.0, 1e-12);
  // Clamping outside the seen range.
  EXPECT_EQ(norm.Normalize(100.0), 1.0);
  EXPECT_EQ(norm.Normalize(-100.0), 0.0);
}

TEST(IncrementalNormalizerTest, DegenerateRange) {
  IncrementalNormalizer norm;
  norm.Observe(3.0);
  norm.Observe(3.0);
  EXPECT_EQ(norm.Normalize(3.0), 0.5);
}

TEST(IncrementalNormalizerTest, ResetForgets) {
  IncrementalNormalizer norm;
  norm.Observe(1.0);
  norm.Observe(9.0);
  norm.Reset();
  EXPECT_EQ(norm.count(), 0u);
  EXPECT_EQ(norm.Normalize(5.0), 0.5);
}

TEST(OnlineQueryDeciderTest, BurnInNeverQueries) {
  Rng rng(8);
  OnlineQueryDecider decider(10.0, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(decider.ShouldQuery(static_cast<double>(i), &rng));
  }
  EXPECT_EQ(decider.seen(), 5u);
}

TEST(OnlineQueryDeciderTest, LowScoresQueriedMoreOften) {
  Rng rng(9);
  OnlineQueryDecider decider(1.0, 10);
  // Prime the range with scores in [0, 1].
  for (int i = 0; i <= 10; ++i) {
    decider.ShouldQuery(i / 10.0, &rng);
  }
  int low_hits = 0, high_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (decider.ShouldQuery(0.05, &rng)) ++low_hits;
    if (decider.ShouldQuery(0.95, &rng)) ++high_hits;
  }
  EXPECT_GT(low_hits, high_hits * 3);
}

// ------------------------------------------------------- Serialization

MlpClassifier MakeModel(std::uint64_t seed, bool spectral = true) {
  MlpConfig config;
  config.input_dim = 6;
  config.hidden_dims = {10, 4};
  config.spectral.enabled = spectral;
  config.spectral.coeff = 2.5;
  Rng rng(seed);
  return MlpClassifier(config, &rng);
}

TEST(SerializeTest, RoundTripPreservesOutputs) {
  MlpClassifier model = MakeModel(10);
  std::stringstream ss;
  ASSERT_TRUE(SaveModel(model, ss).ok());
  Result<MlpClassifier> loaded = LoadModel(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Rng rng(11);
  Matrix x(7, 6);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  EXPECT_LT(MaxAbsDiff(model.Logits(x), loaded.value().Logits(x)), 1e-12);
  EXPECT_EQ(loaded.value().config().spectral.coeff, 2.5);
}

TEST(SerializeTest, RoundTripLinearModel) {
  MlpConfig config;
  config.input_dim = 3;
  config.hidden_dims = {};
  Rng rng(12);
  MlpClassifier model(config, &rng);
  std::stringstream ss;
  ASSERT_TRUE(SaveModel(model, ss).ok());
  Result<MlpClassifier> loaded = LoadModel(ss);
  ASSERT_TRUE(loaded.ok());
  Matrix x(2, 3, 0.4);
  EXPECT_LT(MaxAbsDiff(model.Logits(x), loaded.value().Logits(x)), 1e-12);
}

TEST(SerializeTest, RejectsGarbage) {
  std::stringstream ss("not-a-model at all");
  EXPECT_FALSE(LoadModel(ss).ok());
}

TEST(SerializeTest, RejectsTruncated) {
  MlpClassifier model = MakeModel(13);
  std::stringstream ss;
  ASSERT_TRUE(SaveModel(model, ss).ok());
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_FALSE(LoadModel(cut).ok());
}

TEST(SerializeTest, RejectsWrongVersion) {
  std::stringstream ss("faction-mlp v99\ninput_dim 4\n");
  const Result<MlpClassifier> loaded = LoadModel(ss);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(SerializeTest, FileRoundTrip) {
  MlpClassifier model = MakeModel(14);
  const std::string path = "/tmp/faction_serialize_test.model";
  ASSERT_TRUE(SaveModelToFile(model, path).ok());
  Result<MlpClassifier> loaded = LoadModelFromFile(path);
  ASSERT_TRUE(loaded.ok());
  Matrix x(1, 6, 0.2);
  EXPECT_LT(MaxAbsDiff(model.Logits(x), loaded.value().Logits(x)), 1e-12);
  EXPECT_FALSE(LoadModelFromFile("/tmp/does_not_exist.model").ok());
}

}  // namespace
}  // namespace faction
