// Golden-value regression tests: pin exact numerical behaviour of the
// deterministic primitives so refactors cannot silently change results.
// Values were computed analytically or captured from the initial verified
// implementation (noted per test).
#include <cmath>

#include "common/rng.h"
#include "density/gaussian.h"
#include "fairness/metrics.h"
#include "fairness/relaxed.h"
#include "gtest/gtest.h"
#include "nn/loss.h"
#include "stream/selection.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace faction {
namespace {

TEST(RegressionTest, RngFirstDraws) {
  // Captured from the verified xoshiro256** implementation; any change to
  // seeding or the generator breaks every seeded experiment in the repo.
  Rng rng(42);
  const std::uint64_t first = rng.NextU64();
  Rng rng2(42);
  EXPECT_EQ(first, rng2.NextU64());
  // Uniform must be in [0, 1) and reproducible.
  Rng rng3(42);
  rng3.NextU64();
  const double u = rng3.Uniform();
  Rng rng4(42);
  rng4.NextU64();
  EXPECT_EQ(u, rng4.Uniform());
}

TEST(RegressionTest, StandardNormalLogPdfAnalytic) {
  // log N(0; 0, 1) in d dims = -d/2 * log(2*pi): exercised through the
  // Cholesky-based path with a hand-built unit covariance.
  Matrix samples(3, 2);
  samples(0, 0) = 1.0;
  samples(1, 0) = -1.0;
  samples(0, 1) = 1.0;
  samples(2, 1) = -1.0;
  // Rather than fitting, verify via Mahalanobis of a known SPD system:
  const Matrix cov = {{2.0, 0.0}, {0.0, 0.5}};
  const Result<Matrix> chol = Cholesky(cov);
  ASSERT_TRUE(chol.ok());
  // x = (2, 1): maha = 4/2 + 1/0.5 = 4.
  const std::vector<double> y = CholeskySolve(chol.value(), {2.0, 1.0});
  EXPECT_NEAR(2.0 * y[0] + 1.0 * y[1], 4.0, 1e-12);
  EXPECT_NEAR(LogDetFromCholesky(chol.value()), std::log(1.0), 1e-12);
}

TEST(RegressionTest, CrossEntropyUniformBinary) {
  // Uniform binary logits: loss = ln 2 = 0.693147...
  const Matrix logits(4, 2, 0.0);
  Matrix dlogits;
  EXPECT_NEAR(SoftmaxCrossEntropy(logits, {0, 1, 0, 1}, &dlogits),
              0.6931471805599453, 1e-15);
}

TEST(RegressionTest, RelaxedDdpBalancedGroups) {
  // v = E[h|s=+1] - E[h|s=-1] for balanced groups (exact identity).
  const std::vector<int> s = {1, 1, -1, -1};
  const Result<double> v = RelaxedFairness(FairnessNotion::kDdp,
                                           {1.0, 0.5, 0.25, 0.25}, s, {});
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value(), 0.75 - 0.25, 1e-12);
}

TEST(RegressionTest, MutualInformationDeterministicPair) {
  // Perfect correlation of balanced binaries: I = ln 2.
  EXPECT_NEAR(
      MutualInformation({1, 1, 0, 0}, {1, 1, -1, -1}).value(),
      0.6931471805599453, 1e-15);
}

TEST(RegressionTest, MinMaxNormalizeExactValues) {
  const std::vector<double> norm = MinMaxNormalize({-2.0, 0.0, 6.0});
  EXPECT_DOUBLE_EQ(norm[0], 0.0);
  EXPECT_DOUBLE_EQ(norm[1], 0.25);
  EXPECT_DOUBLE_EQ(norm[2], 1.0);
}

TEST(RegressionTest, SoftmaxKnownValues) {
  // softmax(0, ln 3) = (1/4, 3/4).
  const Matrix logits = {{0.0, std::log(3.0)}};
  const Matrix p = SoftmaxRows(logits);
  EXPECT_NEAR(p(0, 0), 0.25, 1e-12);
  EXPECT_NEAR(p(0, 1), 0.75, 1e-12);
}

TEST(RegressionTest, PowerIterationExactSingularValue) {
  // [[6, 0], [0, 2]] has sigma_max = 6 exactly.
  const Matrix w = {{6.0, 0.0}, {0.0, 2.0}};
  Rng rng(1);
  EXPECT_NEAR(PowerIteration(w, {}, 100, &rng).sigma, 6.0, 1e-9);
}

TEST(RegressionTest, GaussianFitKnownCovariance) {
  // Two points (1, 0) and (-1, 0): mean (0,0), population covariance
  // diag(1, 0) -> with shrinkage 0 and jitter j the Mahalanobis of (0, 1)
  // is ~1/j (huge) and of (1, 0) is ~1/(1+j) (about 1).
  Matrix samples(2, 2);
  samples(0, 0) = 1.0;
  samples(1, 0) = -1.0;
  CovarianceConfig config;
  config.shrinkage = 0.0;
  config.jitter = 1e-6;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g.value().MahalanobisSquared({1.0, 0.0}), 1.0, 1e-4);
  EXPECT_GT(g.value().MahalanobisSquared({0.0, 1.0}), 1e5);
}

TEST(RegressionTest, EodHandValues) {
  // TPRs: group +1 = 2/2 = 1, group -1 = 1/2; FPRs equal (0). EOD = 0.5.
  const std::vector<int> yhat = {1, 1, 1, 0, 0, 0};
  const std::vector<int> y = {1, 1, 1, 1, 0, 0};
  const std::vector<int> s = {1, 1, -1, -1, 1, -1};
  EXPECT_NEAR(EqualizedOddsDifference(yhat, y, s).value(), 0.5, 1e-12);
}

TEST(RegressionTest, LogSumExpExactPair) {
  // LSE(ln 1, ln 3) = ln 4.
  EXPECT_NEAR(LogSumExp({0.0, std::log(3.0)}), std::log(4.0), 1e-12);
}

}  // namespace
}  // namespace faction
