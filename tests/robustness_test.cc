// Failure-injection and degenerate-input robustness: the full pipeline
// must survive (or fail loudly with a Status, never crash) on streams that
// violate the comfortable assumptions — single-group tasks, constant
// features, tasks barely larger than the budget, and adversarial label
// distributions.
#include <cmath>

#include "common/rng.h"
#include "core/presets.h"
#include "data/dataset.h"
#include "data/streams.h"
#include "gtest/gtest.h"
#include "stream/online_learner.h"

namespace faction {
namespace {

ExperimentDefaults TinyDefaults() {
  ExperimentDefaults d;
  d.budget_per_task = 20;
  d.acquisition_batch = 10;
  d.warm_start = 20;
  d.hidden_dims = {12, 6};
  d.epochs = 2;
  return d;
}

Dataset MakeTask(std::size_t n, std::size_t dim, Rng* rng,
                 double group_fraction = 0.5, double positive = 0.5,
                 double feature_scale = 1.0, int environment = 0) {
  Dataset task(dim);
  for (std::size_t i = 0; i < n; ++i) {
    Example e;
    e.environment = environment;
    e.label = rng->Bernoulli(positive) ? 1 : 0;
    e.sensitive = rng->Bernoulli(group_fraction) ? 1 : -1;
    e.x.resize(dim);
    for (double& v : e.x) {
      v = feature_scale * rng->Gaussian() +
          (e.label == 1 ? 1.0 : -1.0);
    }
    FACTION_CHECK(task.Append(e).ok());
  }
  return task;
}

class AllMethodsRobustness : public ::testing::TestWithParam<std::string> {};

TEST_P(AllMethodsRobustness, SingleGroupTaskSurvives) {
  Rng rng(1);
  std::vector<Dataset> tasks;
  tasks.push_back(MakeTask(80, 6, &rng));
  // Second task: only sensitive group +1 present.
  tasks.push_back(MakeTask(80, 6, &rng, /*group_fraction=*/1.0));
  tasks.push_back(MakeTask(80, 6, &rng));
  const Result<RunResult> run =
      RunMethodOnStream(GetParam(), tasks, TinyDefaults(), 7);
  ASSERT_TRUE(run.ok()) << GetParam() << ": " << run.status().ToString();
  EXPECT_EQ(run.value().per_task.size(), 3u);
  // Group-comparison metrics on the degenerate task are *undefined* (NaN +
  // cleared flag), not silently coerced to a perfect-fairness 0.0. MI stays
  // defined: the joint distribution factorizes trivially with one group.
  const TaskMetrics& degenerate = run.value().per_task[1];
  EXPECT_FALSE(degenerate.ddp_defined);
  EXPECT_TRUE(std::isnan(degenerate.ddp));
  EXPECT_FALSE(degenerate.eod_defined);
  EXPECT_TRUE(std::isnan(degenerate.eod));
  EXPECT_TRUE(degenerate.mi_defined);
  EXPECT_FALSE(std::isnan(degenerate.mi));
  // The healthy tasks stay fully defined.
  EXPECT_TRUE(run.value().per_task[0].ddp_defined);
  EXPECT_TRUE(run.value().per_task[2].ddp_defined);
  // The stream summary counts the degenerate task and keeps it out of the
  // means (which therefore stay finite).
  EXPECT_EQ(run.value().summary.undefined_metric_tasks, 1u);
  EXPECT_EQ(run.value().summary.ddp_defined_tasks, 2u);
  EXPECT_FALSE(std::isnan(run.value().summary.mean_ddp));
}

TEST_P(AllMethodsRobustness, HeavyClassImbalanceSurvives) {
  Rng rng(2);
  std::vector<Dataset> tasks;
  // 95% negative labels: tiny positive cells in the density estimator.
  for (int t = 0; t < 2; ++t) {
    tasks.push_back(MakeTask(100, 6, &rng, 0.5, /*positive=*/0.05));
  }
  const Result<RunResult> run =
      RunMethodOnStream(GetParam(), tasks, TinyDefaults(), 9);
  ASSERT_TRUE(run.ok()) << GetParam() << ": " << run.status().ToString();
}

TEST_P(AllMethodsRobustness, NearConstantFeaturesSurvive) {
  Rng rng(3);
  std::vector<Dataset> tasks;
  // Features with almost no variance: degenerate covariances exercise the
  // jitter fallback throughout.
  for (int t = 0; t < 2; ++t) {
    tasks.push_back(MakeTask(80, 6, &rng, 0.5, 0.5,
                             /*feature_scale=*/1e-7));
  }
  const Result<RunResult> run =
      RunMethodOnStream(GetParam(), tasks, TinyDefaults(), 11);
  ASSERT_TRUE(run.ok()) << GetParam() << ": " << run.status().ToString();
}

TEST_P(AllMethodsRobustness, TaskBarelyAboveBudget) {
  Rng rng(4);
  std::vector<Dataset> tasks;
  // Task 0: warm start (20) + budget (20) consumes 40 of 44 samples.
  tasks.push_back(MakeTask(44, 6, &rng));
  tasks.push_back(MakeTask(44, 6, &rng));
  const Result<RunResult> run =
      RunMethodOnStream(GetParam(), tasks, TinyDefaults(), 13);
  ASSERT_TRUE(run.ok()) << GetParam() << ": " << run.status().ToString();
  EXPECT_LE(run.value().per_task[0].queries_used, 20u);
  EXPECT_EQ(run.value().per_task[1].queries_used, 20u);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethodsRobustness,
    ::testing::Values("FACTION", "FAL", "FAL-CUR", "Decoupled", "QuFUR",
                      "DDU", "Entropy-AL", "Random"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RobustnessTest, EnvironmentWhiplash) {
  // Environments alternate wildly every task; FACTION must track without
  // numerical failures and with finite metrics throughout.
  Rng rng(5);
  std::vector<Dataset> tasks;
  for (int t = 0; t < 6; ++t) {
    Dataset task(6);
    for (std::size_t i = 0; i < 90; ++i) {
      Example e;
      e.environment = t % 2;
      e.label = rng.Bernoulli(0.5) ? 1 : 0;
      e.sensitive = rng.Bernoulli(0.5) ? 1 : -1;
      e.x.assign(6, t % 2 == 0 ? 0.0 : 15.0);  // violent covariate jumps
      for (double& v : e.x) v += rng.Gaussian() + (e.label == 1 ? 1.0 : 0.0);
      FACTION_CHECK(task.Append(e).ok());
    }
    tasks.push_back(std::move(task));
  }
  const Result<RunResult> run =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 17);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (const TaskMetrics& m : run.value().per_task) {
    EXPECT_TRUE(std::isfinite(m.nll));
    EXPECT_TRUE(std::isfinite(m.ddp));
  }
}

TEST(RobustnessTest, MixedDimensionStreamRejected) {
  Rng rng(6);
  std::vector<Dataset> tasks;
  tasks.push_back(MakeTask(60, 6, &rng));
  tasks.push_back(MakeTask(60, 4, &rng));  // dimension drift
  const Result<RunResult> run =
      RunMethodOnStream("Random", tasks, TinyDefaults(), 19);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, WarmStartLargerThanTask) {
  Rng rng(7);
  std::vector<Dataset> tasks;
  tasks.push_back(MakeTask(15, 6, &rng));  // smaller than warm_start=20
  tasks.push_back(MakeTask(60, 6, &rng));
  const Result<RunResult> run =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 21);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // The whole first task is consumed by the (clamped) warm start.
  EXPECT_EQ(run.value().per_task[0].queries_used, 0u);
}

TEST(RobustnessTest, SingleSampleTask) {
  Rng rng(8);
  std::vector<Dataset> tasks;
  tasks.push_back(MakeTask(60, 6, &rng));
  tasks.push_back(MakeTask(1, 6, &rng));
  tasks.push_back(MakeTask(60, 6, &rng));
  const Result<RunResult> run =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 23);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().per_task.size(), 3u);
}

}  // namespace
}  // namespace faction
