// Tests for the contracts layer (common/check.h): the always-on FACTION_CHECK*
// macros must abort with a diagnostic naming the failed condition, the
// FACTION_DCHECK* variants must be active exactly when FACTION_DCHECKS_ENABLED
// says so, and the shape-checked Matrix/linalg entry points must abort on
// mismatched operands.

#include "common/check.h"

#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/linalg.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace faction {
namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckTest, PassingChecksAreSilent) {
  FACTION_CHECK(true);
  FACTION_CHECK_EQ(1, 1);
  FACTION_CHECK_NE(1, 2);
  FACTION_CHECK_LT(1, 2);
  FACTION_CHECK_LE(2, 2);
  FACTION_CHECK_GT(3, 2);
  FACTION_CHECK_GE(3, 3);
  FACTION_CHECK_FINITE(0.0);
  FACTION_CHECK_FINITE(-1e300);
  const std::vector<double> v{1.0, 2.0};
  FACTION_CHECK_LEN(v, 2);
  const Matrix a(2, 3);
  FACTION_CHECK_SHAPE(a, 2, 3);
  const Matrix b(2, 3);
  FACTION_CHECK_SAME_SHAPE(a, b);
}

TEST(CheckDeathTest, CheckAbortsWithCondition) {
  EXPECT_DEATH(FACTION_CHECK(1 + 1 == 3), "CHECK failed: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, CheckEqPrintsBothOperands) {
  const int lhs = 3;
  const int rhs = 7;
  EXPECT_DEATH(FACTION_CHECK_EQ(lhs, rhs), "lhs=3.*rhs=7");
}

TEST(CheckDeathTest, CheckNeAborts) {
  EXPECT_DEATH(FACTION_CHECK_NE(5, 5), "CHECK failed: 5 != 5");
}

TEST(CheckDeathTest, CheckLtAborts) {
  EXPECT_DEATH(FACTION_CHECK_LT(2, 2), "CHECK failed: 2 < 2");
}

TEST(CheckDeathTest, CheckLeAborts) {
  EXPECT_DEATH(FACTION_CHECK_LE(3, 2), "CHECK failed: 3 <= 2");
}

TEST(CheckDeathTest, CheckGtAborts) {
  EXPECT_DEATH(FACTION_CHECK_GT(2, 2), "CHECK failed: 2 > 2");
}

TEST(CheckDeathTest, CheckGeAborts) {
  EXPECT_DEATH(FACTION_CHECK_GE(1, 2), "CHECK failed: 1 >= 2");
}

TEST(CheckDeathTest, CheckOpEvaluatesOperandsOnce) {
  int calls = 0;
  auto bump = [&calls]() { return ++calls; };
  FACTION_CHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, CheckFiniteRejectsNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(FACTION_CHECK_FINITE(nan), "CHECK_FINITE failed: nan");
}

TEST(CheckDeathTest, CheckFiniteRejectsInfinity) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(FACTION_CHECK_FINITE(inf), "CHECK_FINITE failed: inf");
}

TEST(CheckDeathTest, CheckLenReportsGotAndWant) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DEATH(FACTION_CHECK_LEN(v, 5), "got 3, want 5");
}

TEST(CheckDeathTest, CheckShapeReportsGotAndWant) {
  const Matrix m(2, 3);
  EXPECT_DEATH(FACTION_CHECK_SHAPE(m, 4, 4), "got 2x3, want 4x4");
}

TEST(CheckDeathTest, CheckSameShapeAborts) {
  const Matrix a(2, 3);
  const Matrix b(3, 2);
  EXPECT_DEATH(FACTION_CHECK_SAME_SHAPE(a, b), "got 2x3, want 3x2");
}

// --- DCHECK behavior depends on the build mode --------------------------

#if FACTION_DCHECKS_ENABLED

TEST(CheckDeathTest, DcheckAbortsWhenEnabled) {
  EXPECT_DEATH(FACTION_DCHECK(false), "CHECK failed");
}

TEST(CheckDeathTest, DcheckEqAbortsWhenEnabled) {
  EXPECT_DEATH(FACTION_DCHECK_EQ(1, 2), "lhs=1.*rhs=2");
}

TEST(CheckDeathTest, DcheckFiniteAbortsWhenEnabled) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(FACTION_DCHECK_FINITE(nan), "CHECK_FINITE failed");
}

TEST(CheckDeathTest, MatrixOperatorBoundsCheckedWhenEnabled) {
  const Matrix m(2, 2);
  EXPECT_DEATH(m(2, 0), "CHECK failed");
  EXPECT_DEATH(m(0, 2), "CHECK failed");
}

#else  // !FACTION_DCHECKS_ENABLED

TEST(CheckTest, DcheckCompiledOutInRelease) {
  // Operands must still compile but must not be evaluated.
  int calls = 0;
  auto bump = [&calls]() { return ++calls; };
  FACTION_DCHECK(bump() > 0);
  FACTION_DCHECK_EQ(bump(), 0);
  FACTION_DCHECK_FINITE(static_cast<double>(bump()));
  EXPECT_EQ(calls, 0);
}

#endif  // FACTION_DCHECKS_ENABLED

// --- Shape contracts on the deployed numeric entry points ---------------

TEST(CheckDeathTest, MatrixAtOutOfRangeAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m.At(2, 0), "CHECK failed: r < rows_");
  EXPECT_DEATH(m.At(0, 5), "CHECK failed: c < cols_");
}

TEST(CheckDeathTest, MatrixSetRowWrongLengthAborts) {
  Matrix m(2, 3);
  EXPECT_DEATH(m.SetRow(0, {1.0, 2.0}), "got 2, want 3");
  EXPECT_DEATH(m.SetRow(9, {1.0, 2.0, 3.0}), "CHECK failed: r < rows_");
}

TEST(CheckDeathTest, MatrixInitializerListRaggedAborts) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "CHECK failed");
}

TEST(CheckDeathTest, MatMulInnerDimMismatchAborts) {
  const Matrix a(2, 3);
  const Matrix b(4, 2);
  EXPECT_DEATH(MatMul(a, b), "a.cols\\(\\) == b.rows\\(\\)");
}

TEST(CheckDeathTest, AddShapeMismatchAborts) {
  const Matrix a(2, 3);
  const Matrix b(3, 2);
  EXPECT_DEATH(Add(a, b), "got 2x3, want 3x2");
}

TEST(CheckDeathTest, DotLengthMismatchAborts) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DEATH(Dot(a, b), "CHECK_LEN failed");
}

TEST(CheckDeathTest, ForwardSolveLengthMismatchAborts) {
  const Matrix lower = Matrix::Identity(3);
  const std::vector<double> b{1.0};
  EXPECT_DEATH(ForwardSolve(lower, b), "CHECK_LEN failed");
}

}  // namespace
}  // namespace faction
