// Telemetry registry + JSONL trace: counter/gauge/histogram semantics,
// the trace schema golden, and the two determinism contracts — disabling
// telemetry leaves results bitwise unchanged, and counter values do not
// depend on the worker-thread count.
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/alloc_audit.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/presets.h"
#include "data/streams.h"
#include "gtest/gtest.h"
#include "stream/trace.h"
#include "tensor/simd.h"

namespace faction {
namespace {

// The registry is process-global: every test starts from a clean, enabled
// slate and leaves telemetry disabled for its neighbours.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { Telemetry::Enable()->Reset(); }
  void TearDown() override {
    Telemetry::Enable()->Reset();
    Telemetry::Disable();
  }
};

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ParallelThreadCount()) {}
  ~ThreadCountGuard() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

std::vector<Dataset> TinyStream() {
  StationaryConfig config;
  config.scale.samples_per_task = 60;
  config.scale.seed = 11;
  config.dim = 4;
  config.num_tasks = 3;
  Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
  EXPECT_TRUE(stream.ok());
  return std::move(stream).value();
}

ExperimentDefaults TinyDefaults() {
  ExperimentDefaults d;
  d.budget_per_task = 16;
  d.acquisition_batch = 8;
  d.warm_start = 16;
  d.hidden_dims = {8};
  d.epochs = 2;
  return d;
}

std::uint64_t Bits(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

TEST_F(TelemetryTest, CounterSemantics) {
  TelemetryCount("test.counter");
  TelemetryCount("test.counter", 4);
  EXPECT_EQ(TelemetryCounterValue("test.counter"), 5u);
  EXPECT_EQ(TelemetryCounterValue("test.never_touched"), 0u);
  const auto counters = Telemetry::Get()->Counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "test.counter");
}

TEST_F(TelemetryTest, DisabledHelpersAreNoOps) {
  Telemetry* registry = Telemetry::Get();
  Telemetry::Disable();
  TelemetryCount("test.off");
  TelemetryGauge("test.off_gauge", 1.0);
  TelemetryObserve("test.off_hist", 1.0);
  EXPECT_EQ(Telemetry::Get(), nullptr);
  EXPECT_EQ(TelemetryCounterValue("test.off"), 0u);
  // The registry object itself retained nothing from the disabled calls.
  EXPECT_EQ(registry->CounterValue("test.off"), 0u);
  Telemetry::Enable();
}

TEST_F(TelemetryTest, GaugeLastWriteWins) {
  TelemetryGauge("test.gauge", 1.5);
  TelemetryGauge("test.gauge", -2.5);
  EXPECT_EQ(Telemetry::Get()->GaugeValue("test.gauge"), -2.5);
}

TEST_F(TelemetryTest, BucketIndexLayout) {
  // Underflow slot: anything below the first bound, including zero,
  // negatives, and NaN.
  EXPECT_EQ(Telemetry::BucketIndex(0.0), 0);
  EXPECT_EQ(Telemetry::BucketIndex(-1.0), 0);
  EXPECT_EQ(Telemetry::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(Telemetry::BucketIndex(Telemetry::kFirstBound / 2), 0);
  // First real bucket starts at the first bound; bounds double.
  EXPECT_EQ(Telemetry::BucketIndex(Telemetry::kFirstBound), 1);
  EXPECT_EQ(Telemetry::BucketIndex(Telemetry::kFirstBound * 1.99), 1);
  EXPECT_EQ(Telemetry::BucketIndex(Telemetry::kFirstBound * 2.0), 2);
  // Overflow slot.
  EXPECT_EQ(Telemetry::BucketIndex(1e300), Telemetry::kNumBuckets + 1);
  // Monotonic across the whole range.
  int prev = 0;
  for (double v = Telemetry::kFirstBound; v < 1e12; v *= 3.7) {
    const int idx = Telemetry::BucketIndex(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST_F(TelemetryTest, HistogramSnapshotAccumulates) {
  TelemetryObserve("test.hist", 1e-6);
  TelemetryObserve("test.hist", 2e-6);
  TelemetryObserve("test.hist", 3e-6);
  const Telemetry::HistogramSnapshot snap =
      Telemetry::Get()->HistogramFor("test.hist");
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum, 6e-6, 1e-18);
  EXPECT_EQ(snap.min, 1e-6);
  EXPECT_EQ(snap.max, 3e-6);
  std::uint64_t total = 0;
  for (const std::uint64_t b : snap.buckets) total += b;
  EXPECT_EQ(total, 3u);
  // A histogram never observed snapshots as empty.
  EXPECT_EQ(Telemetry::Get()->HistogramFor("test.nothing").count, 0u);
}

TEST_F(TelemetryTest, ScopedTimerRecordsOnlyWhenEnabled) {
  { ScopedTimer timer("test.scoped.seconds"); }
  EXPECT_EQ(Telemetry::Get()->HistogramFor("test.scoped.seconds").count, 1u);
  Telemetry* registry = Telemetry::Get();
  Telemetry::Disable();
  {
    ScopedTimer timer("test.scoped.seconds");
    EXPECT_EQ(timer.ElapsedSeconds(), 0.0);
  }
  Telemetry::Enable();
  EXPECT_EQ(registry->HistogramFor("test.scoped.seconds").count, 1u);
}

TEST_F(TelemetryTest, MarkdownRendersSections) {
  TelemetryCount("test.counter", 7);
  TelemetryGauge("test.gauge", 0.5);
  TelemetryObserve("test.hist", 1.0);
  std::ostringstream os;
  Telemetry::Get()->WriteMarkdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("## Telemetry"), std::string::npos);
  EXPECT_NE(out.find("test.counter"), std::string::npos);
  EXPECT_NE(out.find("test.gauge"), std::string::npos);
  EXPECT_NE(out.find("test.hist"), std::string::npos);
}

// ------------------------------------------------------------ TraceWriter

TEST_F(TelemetryTest, TraceSchemaGolden) {
  std::ostringstream os;
  TraceWriter writer(&os);
  ASSERT_TRUE(writer.WriteRunStart("FACTION \"quoted\"").ok());
  TaskTraceRecord r;
  r.task_index = 2;
  r.environment = 1;
  r.queries_spent = 16;
  r.acquisition_batches = 2;
  r.train_steps = 12;
  r.density_refit_mode = "incremental";
  r.drift_fired = 1;
  r.accuracy = 0.75;
  r.nll = 0.5;
  r.ddp = 0.0;
  r.ddp_defined = false;  // emitted as null
  r.eod = 0.125;
  r.mi = 0.25;
  r.wall_evaluate_seconds = 0.5;
  r.wall_acquire_seconds = 0.25;
  r.wall_train_seconds = 1.0;
  r.wall_task_seconds = 2.0;
  ASSERT_TRUE(writer.WriteTask(r).ok());
  ASSERT_TRUE(writer.WriteRunEnd(3, 48, 1).ok());

  const std::string expected =
      "{\"type\":\"run_start\",\"schema_version\":7,"
      "\"strategy\":\"FACTION \\\"quoted\\\"\",\"simd_level\":\"" +
      std::string(SimdLevelName(ActiveSimdLevel())) + "\",\"alloc_audit\":\"" +
      std::string(AllocAuditMode()) +
      "\",\"density\":{\"window\":0,\"decay\":1},"
      "\"scenario\":{\"spec\":\"none\",\"world_seed\":0},"
      "\"checkpoint\":{\"enabled\":false,\"interval_steps\":0}}\n"
      "{\"type\":\"task\",\"task_index\":2,\"environment\":1,"
      "\"queries\":16,\"acquisition_batches\":2,\"train_steps\":12,"
      "\"density_refit_mode\":\"incremental\",\"drift_fired\":1,"
      "\"metrics\":{\"accuracy\":0.75,\"nll\":0.5,\"ddp\":null,"
      "\"eod\":0.125,\"mi\":0.25},"
      "\"metric_defined\":{\"ddp\":false,\"eod\":true,\"mi\":true},"
      "\"wall\":{\"evaluate_seconds\":0.5,\"acquire_seconds\":0.25,"
      "\"train_seconds\":1,\"task_seconds\":2}}\n"
      "{\"type\":\"run_end\",\"tasks\":3,\"total_queries\":48,"
      "\"undefined_metric_tasks\":1}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST_F(TelemetryTest, TraceRunStartServeObjectGolden) {
  std::ostringstream os;
  TraceWriter writer(&os);
  TraceWriter::ServeInfo serve;
  serve.workers = 8;
  serve.sessions = 512;
  TraceWriter::DensityInfo density;
  density.window = 256;
  density.decay = 0.875;
  ASSERT_TRUE(writer.WriteRunStart("serve_loadgen", serve, density).ok());
  const std::string expected =
      "{\"type\":\"run_start\",\"schema_version\":7,"
      "\"strategy\":\"serve_loadgen\",\"simd_level\":\"" +
      std::string(SimdLevelName(ActiveSimdLevel())) + "\",\"alloc_audit\":\"" +
      std::string(AllocAuditMode()) +
      "\",\"density\":{\"window\":256,\"decay\":0.875},"
      "\"scenario\":{\"spec\":\"none\",\"world_seed\":0},"
      "\"checkpoint\":{\"enabled\":false,\"interval_steps\":0},"
      "\"serve\":{\"workers\":8,\"sessions\":512}}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST_F(TelemetryTest, TraceRunStartScenarioObjectGolden) {
  std::ostringstream os;
  TraceWriter writer(&os);
  TraceWriter::ScenarioInfo scenario;
  scenario.spec = "rcmnist;drift=recurring:2;order=adversarial";
  scenario.world_seed = 1042;
  TraceWriter::CheckpointInfo checkpoint;
  checkpoint.enabled = true;
  checkpoint.interval_steps = 64;
  ASSERT_TRUE(writer.WriteRunStart("Bandit", {}, scenario, checkpoint).ok());
  const std::string expected =
      "{\"type\":\"run_start\",\"schema_version\":7,"
      "\"strategy\":\"Bandit\",\"simd_level\":\"" +
      std::string(SimdLevelName(ActiveSimdLevel())) + "\",\"alloc_audit\":\"" +
      std::string(AllocAuditMode()) +
      "\",\"density\":{\"window\":0,\"decay\":1},"
      "\"scenario\":{\"spec\":\"rcmnist;drift=recurring:2;order=adversarial\","
      "\"world_seed\":1042},"
      "\"checkpoint\":{\"enabled\":true,\"interval_steps\":64}}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST_F(TelemetryTest, JsonHelpers) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

// A real (tiny) run writes a parseable trace: run_start first, run_end
// last, one task line per task, with the counter-derived fields populated.
TEST_F(TelemetryTest, EndToEndRunProducesTrace) {
  std::ostringstream os;
  TraceWriter writer(&os);
  ExperimentDefaults defaults = TinyDefaults();
  defaults.trace = &writer;
  const std::vector<Dataset> tasks = TinyStream();
  const Result<RunResult> run =
      RunMethodOnStream("FACTION", tasks, defaults, 5);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::string> records;
  while (std::getline(lines, line)) records.push_back(line);
  ASSERT_EQ(records.size(), tasks.size() + 2);
  EXPECT_NE(records.front().find("\"type\":\"run_start\""),
            std::string::npos);
  EXPECT_NE(records.back().find("\"type\":\"run_end\""), std::string::npos);
  for (std::size_t i = 1; i + 1 < records.size(); ++i) {
    EXPECT_NE(records[i].find("\"type\":\"task\""), std::string::npos);
    // Telemetry is on, so the refit mode is resolved, never "unknown".
    EXPECT_EQ(records[i].find("\"density_refit_mode\":\"unknown\""),
              std::string::npos);
  }
  // The learner's own counters saw the run.
  EXPECT_EQ(TelemetryCounterValue("learner.tasks"), tasks.size());
  EXPECT_EQ(TelemetryCounterValue("evaluator.tasks"), tasks.size());
  EXPECT_GT(TelemetryCounterValue("trainer.calls"), 0u);
  EXPECT_GT(TelemetryCounterValue("faction.density_full_refit") +
                TelemetryCounterValue("faction.density_incremental_refit"),
            0u);
}

// Determinism contract #1: enabling telemetry + tracing must not change a
// single bit of the learner's results.
TEST_F(TelemetryTest, TracingLeavesResultsBitwiseUnchanged) {
  const std::vector<Dataset> tasks = TinyStream();
  Telemetry::Disable();
  const Result<RunResult> plain =
      RunMethodOnStream("FACTION", tasks, TinyDefaults(), 5);
  ASSERT_TRUE(plain.ok());

  Telemetry::Enable()->Reset();
  std::ostringstream os;
  TraceWriter writer(&os);
  ExperimentDefaults traced_defaults = TinyDefaults();
  traced_defaults.trace = &writer;
  const Result<RunResult> traced =
      RunMethodOnStream("FACTION", tasks, traced_defaults, 5);
  ASSERT_TRUE(traced.ok());

  ASSERT_EQ(plain.value().per_task.size(), traced.value().per_task.size());
  for (std::size_t i = 0; i < plain.value().per_task.size(); ++i) {
    const TaskMetrics& a = plain.value().per_task[i];
    const TaskMetrics& b = traced.value().per_task[i];
    EXPECT_EQ(Bits(a.accuracy), Bits(b.accuracy));
    EXPECT_EQ(Bits(a.nll), Bits(b.nll));
    EXPECT_EQ(Bits(a.ddp), Bits(b.ddp));
    EXPECT_EQ(Bits(a.eod), Bits(b.eod));
    EXPECT_EQ(Bits(a.mi), Bits(b.mi));
    EXPECT_EQ(Bits(a.fairness_violation), Bits(b.fairness_violation));
    EXPECT_EQ(a.queries_used, b.queries_used);
  }
  EXPECT_EQ(Bits(plain.value().cumulative_violation),
            Bits(traced.value().cumulative_violation));
}

// Determinism contract #2: counters are bumped only from serial
// orchestration code, so their values are identical for any worker-thread
// count.
TEST_F(TelemetryTest, CountersIndependentOfThreadCount) {
  ThreadCountGuard guard;
  const std::vector<Dataset> tasks = TinyStream();

  SetParallelThreadCount(1);
  Telemetry::Enable()->Reset();
  ASSERT_TRUE(RunMethodOnStream("FACTION", tasks, TinyDefaults(), 5).ok());
  std::vector<std::pair<std::string, std::uint64_t>> single;
  for (const auto& kv : Telemetry::Get()->Counters()) {
    if (kv.first.find(".seconds") == std::string::npos) single.push_back(kv);
  }

  SetParallelThreadCount(8);
  Telemetry::Enable()->Reset();
  ASSERT_TRUE(RunMethodOnStream("FACTION", tasks, TinyDefaults(), 5).ok());
  std::vector<std::pair<std::string, std::uint64_t>> eight;
  for (const auto& kv : Telemetry::Get()->Counters()) {
    if (kv.first.find(".seconds") == std::string::npos) eight.push_back(kv);
  }

  EXPECT_EQ(single, eight);
  EXPECT_FALSE(single.empty());
}

}  // namespace
}  // namespace faction
