#include <cmath>

#include "common/rng.h"
#include "data/streams.h"
#include "gtest/gtest.h"
#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "common/workspace.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace faction {
namespace {

// ---------------------------------------------------------------- Linear

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  SpectralNormConfig no_sn;
  Linear lin(3, 2, no_sn, &rng);
  lin.bias()->Fill(0.5);
  Matrix x(4, 3, 1.0);
  const Matrix y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 2u);
  // y = sum of weights per output + bias.
  const Matrix& w = *lin.weight();
  for (std::size_t j = 0; j < 2; ++j) {
    double expect = 0.5;
    for (std::size_t k = 0; k < 3; ++k) expect += w(j, k);
    EXPECT_NEAR(y(0, j), expect, 1e-12);
  }
}

TEST(LinearTest, ForwardInferenceMatchesForward) {
  Rng rng(2);
  SpectralNormConfig no_sn;
  Linear lin(5, 4, no_sn, &rng);
  Matrix x(3, 5);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  const Matrix a = lin.Forward(x);
  const Matrix b = lin.ForwardInference(x);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-12);
}

// Finite-difference gradient check for the Linear layer.
TEST(LinearTest, GradientCheck) {
  Rng rng(3);
  SpectralNormConfig no_sn;
  Linear lin(4, 3, no_sn, &rng);
  Matrix x(2, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  // Scalar objective: L = sum(y).
  auto loss_of = [&](Linear& layer) {
    const Matrix y = layer.ForwardInference(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) acc += y.data()[i];
    return acc;
  };
  lin.ZeroGrad();
  const Matrix y = lin.Forward(x);
  Matrix dy(y.rows(), y.cols(), 1.0);
  const Matrix dx = lin.Backward(dy);

  const double eps = 1e-6;
  // Weight gradient.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const double orig = (*lin.weight())(r, c);
      (*lin.weight())(r, c) = orig + eps;
      const double up = loss_of(lin);
      (*lin.weight())(r, c) = orig - eps;
      const double down = loss_of(lin);
      (*lin.weight())(r, c) = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR((*lin.weight_grad())(r, c), numeric, 1e-4);
    }
  }
  // Bias gradient: each bias column receives batch-size contributions.
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR((*lin.bias_grad())(0, c), 2.0, 1e-9);
  }
  // Input gradient.
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      double expect = 0.0;
      for (std::size_t j = 0; j < 3; ++j) expect += (*lin.weight())(j, c);
      EXPECT_NEAR(dx(r, c), expect, 1e-9);
    }
  }
}

TEST(LinearTest, SpectralNormCapsWeightScale) {
  Rng rng(4);
  SpectralNormConfig sn;
  sn.enabled = true;
  sn.coeff = 1.0;
  sn.power_iterations = 30;
  Linear lin(6, 6, sn, &rng);
  // Inflate the weights so sigma clearly exceeds the budget.
  for (std::size_t i = 0; i < lin.weight()->size(); ++i) {
    lin.weight()->data()[i] *= 10.0;
  }
  Matrix x(2, 6);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  lin.Forward(x);
  EXPECT_GT(lin.last_sigma(), 1.0);
  EXPECT_LT(lin.last_scale(), 1.0);
  EXPECT_NEAR(lin.last_scale() * lin.last_sigma(), sn.coeff, 0.05);
}

TEST(LinearTest, SpectralNormIdleBelowBudget) {
  Rng rng(5);
  SpectralNormConfig sn;
  sn.enabled = true;
  sn.coeff = 1000.0;  // budget far above any initialization
  Linear lin(4, 4, sn, &rng);
  Matrix x(1, 4, 1.0);
  lin.Forward(x);
  EXPECT_EQ(lin.last_scale(), 1.0);
}

TEST(LinearTest, ZeroGradClears) {
  Rng rng(6);
  SpectralNormConfig no_sn;
  Linear lin(2, 2, no_sn, &rng);
  Matrix x(1, 2, 1.0);
  lin.Forward(x);
  Matrix dy(1, 2, 1.0);
  lin.Backward(dy);
  EXPECT_GT(FrobeniusNorm2(*lin.weight_grad()), 0.0);
  lin.ZeroGrad();
  EXPECT_EQ(FrobeniusNorm2(*lin.weight_grad()), 0.0);
  EXPECT_EQ(FrobeniusNorm2(*lin.bias_grad()), 0.0);
}

// ------------------------------------------------------------------ ReLU

TEST(ReluTest, ForwardClamps) {
  Relu relu;
  const Matrix x = {{-1.0, 2.0}, {0.0, -3.0}};
  const Matrix y = relu.Forward(x);
  EXPECT_EQ(y(0, 0), 0.0);
  EXPECT_EQ(y(0, 1), 2.0);
  EXPECT_EQ(y(1, 0), 0.0);
  EXPECT_EQ(y(1, 1), 0.0);
}

TEST(ReluTest, BackwardMasks) {
  Relu relu;
  const Matrix x = {{-1.0, 2.0, 0.5}};
  relu.Forward(x);
  const Matrix dy = {{10.0, 10.0, 10.0}};
  const Matrix dx = relu.Backward(dy);
  EXPECT_EQ(dx(0, 0), 0.0);
  EXPECT_EQ(dx(0, 1), 10.0);
  EXPECT_EQ(dx(0, 2), 10.0);
}

TEST(ReluTest, InferenceMatchesForward) {
  Relu relu;
  const Matrix x = {{-2.0, 3.0}, {4.0, -5.0}};
  EXPECT_LT(MaxAbsDiff(relu.Forward(x), Relu::ForwardInference(x)), 1e-15);
}

// ------------------------------------------------------------------- MLP

MlpConfig SmallConfig() {
  MlpConfig config;
  config.input_dim = 5;
  config.hidden_dims = {8, 4};
  config.num_classes = 2;
  return config;
}

TEST(MlpTest, ShapesAndFeatureDim) {
  Rng rng(7);
  MlpClassifier model(SmallConfig(), &rng);
  EXPECT_EQ(model.feature_dim(), 4u);
  Matrix x(3, 5, 0.3);
  const Matrix logits = model.Forward(x);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 2u);
  EXPECT_EQ(model.last_features().rows(), 3u);
  EXPECT_EQ(model.last_features().cols(), 4u);
  const Matrix z = model.ExtractFeatures(x);
  EXPECT_LT(MaxAbsDiff(z, model.last_features()), 1e-12);
}

TEST(MlpTest, LogitsMatchForward) {
  Rng rng(8);
  MlpClassifier model(SmallConfig(), &rng);
  Matrix x(4, 5);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  const Matrix a = model.Forward(x);
  const Matrix b = model.Logits(x);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-12);
}

TEST(MlpTest, PredictArgmaxOfProba) {
  Rng rng(9);
  MlpClassifier model(SmallConfig(), &rng);
  Matrix x(6, 5);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  const Matrix proba = model.PredictProba(x);
  const std::vector<int> pred = model.Predict(x);
  for (std::size_t i = 0; i < 6; ++i) {
    const int argmax = proba(i, 1) > proba(i, 0) ? 1 : 0;
    EXPECT_EQ(pred[i], argmax);
    EXPECT_NEAR(proba(i, 0) + proba(i, 1), 1.0, 1e-12);
  }
}

// End-to-end gradient check through the full MLP with cross-entropy.
TEST(MlpTest, FullGradientCheck) {
  Rng rng(10);
  MlpConfig config = SmallConfig();
  MlpClassifier model(config, &rng);
  Matrix x(3, 5);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  const std::vector<int> labels = {0, 1, 1};

  auto loss_of = [&]() {
    return SoftmaxNll(model.Logits(x), labels);
  };
  const Matrix logits = model.Forward(x);
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, labels, &dlogits);
  model.ZeroGrad();
  model.Backward(dlogits);

  const std::vector<Matrix*> params = model.Parameters();
  const std::vector<Matrix*> grads = model.Gradients();
  const double eps = 1e-6;
  for (std::size_t p = 0; p < params.size(); ++p) {
    // Spot-check a few entries of every parameter tensor.
    const std::size_t stride = std::max<std::size_t>(1, params[p]->size() / 5);
    for (std::size_t k = 0; k < params[p]->size(); k += stride) {
      const double orig = params[p]->data()[k];
      params[p]->data()[k] = orig + eps;
      const double up = loss_of();
      params[p]->data()[k] = orig - eps;
      const double down = loss_of();
      params[p]->data()[k] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(grads[p]->data()[k], numeric, 1e-4)
          << "param " << p << " entry " << k;
    }
  }
}

TEST(MlpTest, LinearModelWhenNoHidden) {
  Rng rng(11);
  MlpConfig config;
  config.input_dim = 4;
  config.hidden_dims = {};
  MlpClassifier model(config, &rng);
  EXPECT_EQ(model.feature_dim(), 4u);
  Matrix x(2, 4, 0.5);
  // Features of a linear model are the raw inputs.
  EXPECT_LT(MaxAbsDiff(model.ExtractFeatures(x), x), 1e-15);
  const Matrix logits = model.Logits(x);
  EXPECT_EQ(logits.cols(), 2u);
}

TEST(MlpTest, CopyParametersMatchesOutputs) {
  Rng rng_a(12), rng_b(13);
  MlpClassifier a(SmallConfig(), &rng_a);
  MlpClassifier b(SmallConfig(), &rng_b);
  Matrix x(2, 5, 0.7);
  EXPECT_GT(MaxAbsDiff(a.Logits(x), b.Logits(x)), 1e-6);
  b.CopyParametersFrom(a);
  EXPECT_LT(MaxAbsDiff(a.Logits(x), b.Logits(x)), 1e-12);
}

TEST(MlpTest, ParameterCount) {
  Rng rng(14);
  MlpClassifier model(SmallConfig(), &rng);
  // 5->8 (48) + 8->4 (36) + 4->2 (10) = 94.
  EXPECT_EQ(model.ParameterCount(), 94u);
}

// ------------------------------------------------------------------ Loss

TEST(LossTest, CrossEntropyKnownValue) {
  // Uniform logits over 2 classes: loss = log(2).
  const Matrix logits(3, 2, 0.0);
  Matrix dlogits;
  const double loss = SoftmaxCrossEntropy(logits, {0, 1, 0}, &dlogits);
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);
  // Gradient: (p - onehot)/n.
  EXPECT_NEAR(dlogits(0, 0), (0.5 - 1.0) / 3.0, 1e-12);
  EXPECT_NEAR(dlogits(0, 1), 0.5 / 3.0, 1e-12);
}

TEST(LossTest, CrossEntropyGradientCheck) {
  Rng rng(15);
  Matrix logits(4, 3);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = rng.Gaussian();
  }
  const std::vector<int> labels = {2, 0, 1, 2};
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, labels, &dlogits);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix up = logits, down = logits;
    up.data()[i] += eps;
    down.data()[i] -= eps;
    Matrix scratch;
    const double lu = SoftmaxCrossEntropy(up, labels, &scratch);
    const double ld = SoftmaxCrossEntropy(down, labels, &scratch);
    EXPECT_NEAR(dlogits.data()[i], (lu - ld) / (2.0 * eps), 1e-6);
  }
}

TEST(LossTest, NllMatchesCrossEntropyValue) {
  Rng rng(16);
  Matrix logits(5, 2);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = rng.Gaussian();
  }
  const std::vector<int> labels = {0, 1, 1, 0, 1};
  Matrix dlogits;
  EXPECT_NEAR(SoftmaxCrossEntropy(logits, labels, &dlogits),
              SoftmaxNll(logits, labels), 1e-12);
}

TEST(LossTest, FairnessPenaltyZeroWhenBalanced) {
  // Identical score distribution across groups => v = 0 => no penalty.
  const Matrix logits = {{1.0, -1.0}, {1.0, -1.0}, {-1.0, 1.0}, {-1.0, 1.0}};
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<int> sensitive = {1, -1, 1, -1};
  Matrix dlogits(4, 2, 0.0);
  FairnessPenaltyConfig config;
  config.epsilon = 0.0;
  const Result<double> pen =
      AddFairnessPenalty(logits, labels, sensitive, config, &dlogits);
  ASSERT_TRUE(pen.ok()) << pen.status().ToString();
  EXPECT_NEAR(pen.value(), 0.0, 1e-9);
  EXPECT_NEAR(FrobeniusNorm2(dlogits), 0.0, 1e-12);
}

TEST(LossTest, FairnessPenaltyPositiveWhenGroupFavored) {
  // Group +1 receives confident class-1 scores; group -1 class-0.
  const Matrix logits = {{-3.0, 3.0}, {-3.0, 3.0}, {3.0, -3.0}, {3.0, -3.0}};
  const std::vector<int> labels = {1, 1, 0, 0};
  const std::vector<int> sensitive = {1, 1, -1, -1};
  Matrix dlogits(4, 2, 0.0);
  FairnessPenaltyConfig config;
  config.mu = 1.0;
  config.epsilon = 0.0;
  const Result<double> pen =
      AddFairnessPenalty(logits, labels, sensitive, config, &dlogits);
  ASSERT_TRUE(pen.ok());
  EXPECT_GT(pen.value(), 0.5);
  EXPECT_GT(FrobeniusNorm2(dlogits), 0.0);
}

TEST(LossTest, FairnessPenaltyGradientCheck) {
  Rng rng(17);
  Matrix logits(6, 2);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = rng.Gaussian();
  }
  const std::vector<int> labels = {0, 1, 0, 1, 1, 0};
  const std::vector<int> sensitive = {1, 1, -1, -1, 1, -1};
  FairnessPenaltyConfig config;
  config.mu = 0.8;
  config.epsilon = 0.0;

  auto penalty_of = [&](const Matrix& l) {
    Matrix scratch(l.rows(), l.cols(), 0.0);
    const Result<double> pen =
        AddFairnessPenalty(l, labels, sensitive, config, &scratch);
    return pen.value_or(0.0);
  };
  Matrix dlogits(6, 2, 0.0);
  const Result<double> pen =
      AddFairnessPenalty(logits, labels, sensitive, config, &dlogits);
  ASSERT_TRUE(pen.ok());
  // Skip the check if the penalty sits exactly at the hinge kink.
  if (std::fabs(penalty_of(logits)) > 1e-6) {
    const double eps = 1e-6;
    for (std::size_t i = 0; i < logits.size(); ++i) {
      Matrix up = logits, down = logits;
      up.data()[i] += eps;
      down.data()[i] -= eps;
      EXPECT_NEAR(dlogits.data()[i],
                  (penalty_of(up) - penalty_of(down)) / (2.0 * eps), 1e-5);
    }
  }
}

TEST(LossTest, FairnessPenaltyRequiresBinary) {
  const Matrix logits(2, 3, 0.0);
  Matrix dlogits(2, 3, 0.0);
  FairnessPenaltyConfig config;
  const Result<double> pen =
      AddFairnessPenalty(logits, {0, 1}, {1, -1}, config, &dlogits);
  EXPECT_FALSE(pen.ok());
}

TEST(LossTest, FairnessPenaltySingleGroupFails) {
  const Matrix logits(2, 2, 0.0);
  Matrix dlogits(2, 2, 0.0);
  FairnessPenaltyConfig config;
  const Result<double> pen =
      AddFairnessPenalty(logits, {0, 1}, {1, 1}, config, &dlogits);
  EXPECT_FALSE(pen.ok());
}

TEST(LossTest, LiteralPenaltyIgnoresNegativeV) {
  // Disparity favoring group -1 gives v < 0: the literal [v]_+ form stays
  // inactive while the symmetric form penalizes.
  const Matrix logits = {{3.0, -3.0}, {3.0, -3.0}, {-3.0, 3.0}, {-3.0, 3.0}};
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<int> sensitive = {1, 1, -1, -1};  // group -1 favored
  FairnessPenaltyConfig literal;
  literal.symmetric = false;
  literal.epsilon = 0.0;
  Matrix d1(4, 2, 0.0);
  const Result<double> p_lit =
      AddFairnessPenalty(logits, labels, sensitive, literal, &d1);
  ASSERT_TRUE(p_lit.ok());
  EXPECT_NEAR(p_lit.value(), 0.0, 1e-9);

  FairnessPenaltyConfig symmetric;
  symmetric.symmetric = true;
  symmetric.epsilon = 0.0;
  Matrix d2(4, 2, 0.0);
  const Result<double> p_sym =
      AddFairnessPenalty(logits, labels, sensitive, symmetric, &d2);
  ASSERT_TRUE(p_sym.ok());
  EXPECT_GT(p_sym.value(), 0.1);
}

// ------------------------------------------------------------- Optimizer

TEST(OptimizerTest, SgdPlainStep) {
  Matrix p = {{1.0, 2.0}};
  Matrix g = {{0.5, -0.5}};
  SgdOptimizer opt(0.1);
  opt.Step({&p}, {&g});
  EXPECT_NEAR(p(0, 0), 0.95, 1e-12);
  EXPECT_NEAR(p(0, 1), 2.05, 1e-12);
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  Matrix p = {{0.0}};
  Matrix g = {{1.0}};
  SgdOptimizer opt(1.0, 0.9);
  opt.Step({&p}, {&g});
  EXPECT_NEAR(p(0, 0), -1.0, 1e-12);  // v = 1
  opt.Step({&p}, {&g});
  EXPECT_NEAR(p(0, 0), -2.9, 1e-12);  // v = 1.9
}

TEST(OptimizerTest, SgdWeightDecayShrinks) {
  Matrix p = {{10.0}};
  Matrix g = {{0.0}};
  SgdOptimizer opt(0.1, 0.0, 0.5);
  opt.Step({&p}, {&g});
  EXPECT_NEAR(p(0, 0), 10.0 * (1.0 - 0.05), 1e-12);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2; gradient 2(x-3).
  Matrix p = {{0.0}};
  AdamOptimizer opt(0.1);
  for (int i = 0; i < 500; ++i) {
    Matrix g = {{2.0 * (p(0, 0) - 3.0)}};
    opt.Step({&p}, {&g});
  }
  EXPECT_NEAR(p(0, 0), 3.0, 1e-3);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Matrix p = {{-5.0}};
  SgdOptimizer opt(0.1, 0.9);
  for (int i = 0; i < 400; ++i) {
    Matrix g = {{2.0 * (p(0, 0) - 3.0)}};
    opt.Step({&p}, {&g});
  }
  EXPECT_NEAR(p(0, 0), 3.0, 1e-4);
}

TEST(OptimizerTest, LearningRateMutable) {
  SgdOptimizer opt(0.1);
  EXPECT_EQ(opt.learning_rate(), 0.1);
  opt.set_learning_rate(0.01);
  EXPECT_EQ(opt.learning_rate(), 0.01);
}

// --------------------------------------------------------------- Trainer

Dataset TrainerPool(std::size_t n, std::uint64_t seed) {
  StationaryConfig config;
  config.scale.samples_per_task = n;
  config.scale.seed = seed;
  config.dim = 8;
  config.num_tasks = 1;
  Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
  EXPECT_TRUE(stream.ok());
  return std::move(stream.value()[0]);
}

TEST(TrainerTest, LossDecreases) {
  const Dataset pool = TrainerPool(300, 31);
  Rng rng(18);
  MlpConfig mconfig;
  mconfig.input_dim = 8;
  mconfig.hidden_dims = {16, 8};
  MlpClassifier model(mconfig, &rng);
  const double before = SoftmaxNll(model.Logits(pool.features()),
                                   pool.labels());
  TrainConfig tconfig;
  tconfig.epochs = 10;
  Rng train_rng(19);
  const Result<TrainReport> report =
      TrainClassifier(&model, pool, tconfig, &train_rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const double after =
      SoftmaxNll(model.Logits(pool.features()), pool.labels());
  EXPECT_LT(after, before * 0.8);
  EXPECT_GT(report.value().steps, 0);
}

TEST(TrainerTest, FairnessPenaltyReducesDisparity) {
  const Dataset pool = TrainerPool(600, 33);
  TrainConfig plain;
  plain.epochs = 12;
  TrainConfig fair = plain;
  fair.use_fairness_penalty = true;
  fair.fairness.mu = 2.0;
  fair.fairness.epsilon = 0.0;

  auto disparity_of = [&](const TrainConfig& config, std::uint64_t seed) {
    Rng rng(seed);
    MlpConfig mconfig;
    mconfig.input_dim = 8;
    mconfig.hidden_dims = {16, 8};
    MlpClassifier model(mconfig, &rng);
    Rng train_rng(seed + 1);
    const Result<TrainReport> report =
        TrainClassifier(&model, pool, config, &train_rng);
    EXPECT_TRUE(report.ok());
    const Matrix proba = model.PredictProba(pool.features());
    std::vector<double> scores(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) scores[i] = proba(i, 1);
    const Result<double> v = RelaxedFairness(
        FairnessNotion::kDdp, scores, pool.sensitive(), pool.labels());
    EXPECT_TRUE(v.ok());
    return std::fabs(v.value_or(0.0));
  };
  const double plain_v = disparity_of(plain, 100);
  const double fair_v = disparity_of(fair, 100);
  EXPECT_LT(fair_v, plain_v * 0.7)
      << "plain=" << plain_v << " fair=" << fair_v;
}

TEST(TrainerTest, RejectsEmptyDataset) {
  Rng rng(20);
  MlpConfig mconfig;
  mconfig.input_dim = 8;
  MlpClassifier model(mconfig, &rng);
  Dataset empty(8);
  TrainConfig tconfig;
  EXPECT_FALSE(TrainClassifier(&model, empty, tconfig, &rng).ok());
}

TEST(TrainerTest, RejectsDimensionMismatch) {
  const Dataset pool = TrainerPool(50, 35);
  Rng rng(21);
  MlpConfig mconfig;
  mconfig.input_dim = 12;  // pool is 8-dimensional
  MlpClassifier model(mconfig, &rng);
  TrainConfig tconfig;
  EXPECT_FALSE(TrainClassifier(&model, pool, tconfig, &rng).ok());
}

TEST(TrainerTest, RejectsBadHyperparameters) {
  const Dataset pool = TrainerPool(50, 37);
  Rng rng(22);
  MlpConfig mconfig;
  mconfig.input_dim = 8;
  MlpClassifier model(mconfig, &rng);
  TrainConfig tconfig;
  tconfig.epochs = 0;
  EXPECT_FALSE(TrainClassifier(&model, pool, tconfig, &rng).ok());
  tconfig.epochs = 1;
  tconfig.batch_size = 0;
  EXPECT_FALSE(TrainClassifier(&model, pool, tconfig, &rng).ok());
}


// ------------------------------------------------------ fused loss parity

TEST(LossTest, FusedMatchesTwoPassBitwise) {
  Rng rng(901);
  const std::size_t n = 37, c = 5;
  Matrix logits(n, c);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % c);
    for (std::size_t j = 0; j < c; ++j) logits(i, j) = 3.0 * rng.Gaussian();
  }
  Matrix d_ref, d_fused;
  const double ref = SoftmaxCrossEntropy(logits, labels, &d_ref);
  std::vector<double> row_loss;
  const double fused =
      FusedSoftmaxCrossEntropy(logits, labels, &d_fused, &row_loss);
  EXPECT_EQ(ref, fused);
  ASSERT_EQ(d_ref.rows(), d_fused.rows());
  ASSERT_EQ(d_ref.cols(), d_fused.cols());
  EXPECT_EQ(MaxAbsDiff(d_ref, d_fused), 0.0);
  ASSERT_EQ(row_loss.size(), n);
}

TEST(LossTest, FusedScratchIsOptional) {
  Rng rng(902);
  Matrix logits(4, 3);
  std::vector<int> labels = {0, 1, 2, 1};
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = rng.Gaussian();
  }
  Matrix with_scratch, without_scratch;
  std::vector<double> scratch;
  const double a =
      FusedSoftmaxCrossEntropy(logits, labels, &with_scratch, &scratch);
  const double b =
      FusedSoftmaxCrossEntropy(logits, labels, &without_scratch);
  EXPECT_EQ(a, b);
  EXPECT_EQ(MaxAbsDiff(with_scratch, without_scratch), 0.0);
}

// ------------------------------------------------- workspace-reuse trainer

// Deterministic synthetic binary dataset with both sensitive groups.
Dataset TrainerDataset(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(dim);
  for (std::size_t i = 0; i < n; ++i) {
    Example e;
    e.x.resize(dim);
    e.label = static_cast<int>(i % 2);
    e.sensitive = i % 3 == 0 ? -1 : 1;
    for (std::size_t j = 0; j < dim; ++j) {
      e.x[j] = rng.Gaussian() + (e.label == 1 ? 1.0 : -1.0);
    }
    EXPECT_TRUE(data.Append(e).ok());
  }
  return data;
}

TEST(TrainerTest, SharedWorkspaceDoesNotChangeResults) {
  const Dataset data = TrainerDataset(90, 5, 31);
  MlpConfig mconfig;
  mconfig.input_dim = 5;
  mconfig.hidden_dims = {8};
  TrainConfig tconfig;
  tconfig.epochs = 3;
  tconfig.batch_size = 16;

  auto run = [&](Workspace* ws) {
    Rng model_rng(7);
    MlpClassifier model(mconfig, &model_rng);
    Rng train_rng(9);
    const Result<TrainReport> report =
        TrainClassifier(&model, data, tconfig, &train_rng, ws);
    EXPECT_TRUE(report.ok());
    std::vector<Matrix> params;
    for (Matrix* p : model.Parameters()) params.push_back(*p);
    return params;
  };

  const std::vector<Matrix> fresh = run(nullptr);
  Workspace shared;
  // Dirty the arena with a different training run first: reuse must not
  // leak state between calls.
  const Dataset other = TrainerDataset(40, 5, 77);
  {
    Rng model_rng(3);
    MlpClassifier model(mconfig, &model_rng);
    Rng train_rng(4);
    ASSERT_TRUE(
        TrainClassifier(&model, other, tconfig, &train_rng, &shared).ok());
  }
  const std::vector<Matrix> reused = run(&shared);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(fresh[i], reused[i]), 0.0) << "parameter " << i;
  }
  EXPECT_GT(shared.buffer_count(), 0u);
}

TEST(TrainerTest, RepeatedSharedWorkspaceRunsAreIdentical) {
  const Dataset data = TrainerDataset(60, 4, 13);
  MlpConfig mconfig;
  mconfig.input_dim = 4;
  mconfig.hidden_dims = {6};
  TrainConfig tconfig;
  tconfig.epochs = 2;
  tconfig.batch_size = 8;
  Workspace shared;
  auto run = [&]() {
    Rng model_rng(21);
    MlpClassifier model(mconfig, &model_rng);
    Rng train_rng(22);
    EXPECT_TRUE(
        TrainClassifier(&model, data, tconfig, &train_rng, &shared).ok());
    std::vector<Matrix> params;
    for (Matrix* p : model.Parameters()) params.push_back(*p);
    return params;
  };
  const std::vector<Matrix> first = run();
  const std::vector<Matrix> second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(first[i], second[i]), 0.0) << "parameter " << i;
  }
}

}  // namespace
}  // namespace faction
