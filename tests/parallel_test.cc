#include "common/parallel.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "core/fair_score.h"
#include "density/fair_density.h"
#include "density/gaussian.h"
#include "density/grouped_density.h"
#include "gtest/gtest.h"
#include "nn/conv.h"
#include "nn/loss.h"
#include "tensor/image.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace faction {
namespace {

// Restores the ambient thread count when a test scope ends, so thread-count
// mutations never leak across tests.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ParallelThreadCount()) {}
  ~ThreadCountGuard() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian();
  return m;
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0);
}

// ------------------------------------------------------------- pool basics

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  SetParallelThreadCount(8);
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  ParallelFor(0, kN, 7, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ChunkLayoutIsIndependentOfThreadCount) {
  ThreadCountGuard guard;
  constexpr std::size_t kBegin = 3;
  constexpr std::size_t kEnd = 103;
  constexpr std::size_t kGrain = 9;
  const std::size_t nchunks = ParallelChunkCount(kBegin, kEnd, kGrain);
  EXPECT_EQ(nchunks, (kEnd - kBegin + kGrain - 1) / kGrain);
  for (int threads : {1, 5}) {
    SetParallelThreadCount(threads);
    std::vector<std::size_t> begins(nchunks, 0);
    std::vector<std::size_t> ends(nchunks, 0);
    ParallelForChunks(
        kBegin, kEnd, kGrain,
        [&](std::size_t chunk, std::size_t i0, std::size_t i1) {
          begins[chunk] = i0;
          ends[chunk] = i1;
        });
    for (std::size_t c = 0; c < nchunks; ++c) {
      EXPECT_EQ(begins[c], kBegin + c * kGrain);
      EXPECT_EQ(ends[c], std::min(kEnd, kBegin + (c + 1) * kGrain));
    }
  }
}

TEST(ParallelForTest, ParallelChunkCountEdgeCases) {
  EXPECT_EQ(ParallelChunkCount(0, 0, 4), 0u);
  EXPECT_EQ(ParallelChunkCount(0, 3, 100), 1u);
  EXPECT_EQ(ParallelChunkCount(0, 8, 4), 2u);
  EXPECT_EQ(ParallelChunkCount(0, 9, 4), 3u);
}

TEST(ParallelForTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadCountGuard guard;
  SetParallelThreadCount(4);
  EXPECT_THROW(ParallelFor(0, 100, 1,
                           [&](std::size_t i0, std::size_t) {
                             if (i0 == 42) {
                               throw std::runtime_error("chunk failure");
                             }
                           }),
               std::runtime_error);
  // The pool must stay usable after a failed region.
  std::vector<int> hits(64, 0);
  ParallelFor(0, 64, 4, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadCountGuard guard;
  SetParallelThreadCount(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<int> hits(kOuter * kInner, 0);
  ParallelFor(0, kOuter, 1, [&](std::size_t o0, std::size_t o1) {
    for (std::size_t o = o0; o < o1; ++o) {
      ParallelFor(0, kInner, 4, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) ++hits[o * kInner + i];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, ThreadCountClampsToOne) {
  ThreadCountGuard guard;
  SetParallelThreadCount(0);
  EXPECT_EQ(ParallelThreadCount(), 1);
  SetParallelThreadCount(-3);
  EXPECT_EQ(ParallelThreadCount(), 1);
  SetParallelThreadCount(3);
  EXPECT_EQ(ParallelThreadCount(), 3);
}

// --------------------------------------------- tensor kernel determinism

TEST(ParallelDeterminismTest, MatMulBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(11);
  const Matrix a = RandomMatrix(97, 53, &rng);
  const Matrix b = RandomMatrix(53, 61, &rng);
  SetParallelThreadCount(1);
  const Matrix serial = MatMul(a, b);
  for (int threads : {2, 8}) {
    SetParallelThreadCount(threads);
    ExpectBitwiseEqual(serial, MatMul(a, b));
  }
}

TEST(ParallelDeterminismTest, MatMulMatchesNaiveReference) {
  Rng rng(12);
  const Matrix a = RandomMatrix(37, 41, &rng);
  const Matrix b = RandomMatrix(41, 29, &rng);
  const Matrix got = MatMul(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      // The blocked kernel reassociates the k-sum, so compare with a small
      // tolerance rather than bitwise.
      EXPECT_NEAR(got(i, j), acc, 1e-10);
    }
  }
}

TEST(ParallelDeterminismTest, TransposedProductsBitwiseIdentical) {
  ThreadCountGuard guard;
  Rng rng(13);
  const Matrix a = RandomMatrix(45, 67, &rng);
  const Matrix b = RandomMatrix(33, 67, &rng);  // for a * b^T
  const Matrix c = RandomMatrix(45, 21, &rng);  // for a^T * c
  SetParallelThreadCount(1);
  const Matrix bt_serial = MatMulBt(a, b);
  const Matrix at_serial = MatMulAt(a, c);
  const Matrix tr_serial = Transpose(a);
  for (int threads : {2, 8}) {
    SetParallelThreadCount(threads);
    ExpectBitwiseEqual(bt_serial, MatMulBt(a, b));
    ExpectBitwiseEqual(at_serial, MatMulAt(a, c));
    ExpectBitwiseEqual(tr_serial, Transpose(a));
  }
}

TEST(ParallelDeterminismTest, RowwiseOpsBitwiseIdentical) {
  ThreadCountGuard guard;
  Rng rng(14);
  const Matrix logits = RandomMatrix(211, 7, &rng);
  std::vector<double> shift(7);
  for (double& v : shift) v = rng.Gaussian();
  SetParallelThreadCount(1);
  const Matrix softmax_serial = SoftmaxRows(logits);
  const std::vector<double> colsums_serial = ColSums(logits);
  Matrix bcast_serial = logits;
  AddRowBroadcast(&bcast_serial, shift);
  for (int threads : {2, 8}) {
    SetParallelThreadCount(threads);
    ExpectBitwiseEqual(softmax_serial, SoftmaxRows(logits));
    const std::vector<double> colsums = ColSums(logits);
    for (std::size_t j = 0; j < colsums.size(); ++j) {
      EXPECT_EQ(colsums[j], colsums_serial[j]);
    }
    Matrix bcast = logits;
    AddRowBroadcast(&bcast, shift);
    ExpectBitwiseEqual(bcast_serial, bcast);
  }
}

// ------------------------------------------------------ conv determinism

struct ConvRun {
  Matrix out;
  Matrix dx;
  Matrix gw;
  Matrix gb;
};

ConvRun RunConv(int threads, const Matrix& x, const Matrix& dy) {
  SetParallelThreadCount(threads);
  Rng rng(99);  // same seed -> identical weights on every run
  const ImageShape shape{2, 8, 8};
  Conv2d conv(shape, 4, &rng);
  ConvRun run;
  run.out = conv.Forward(x);
  conv.ZeroGrad();
  run.dx = conv.Backward(dy);
  run.gw = *conv.weight_grad();
  run.gb = *conv.bias_grad();
  return run;
}

TEST(ParallelDeterminismTest, ConvForwardBackwardBitwiseIdentical) {
  ThreadCountGuard guard;
  Rng rng(15);
  const ImageShape shape{2, 8, 8};
  const Matrix x = RandomMatrix(9, shape.Flat(), &rng);
  const Matrix dy = RandomMatrix(9, 4 * shape.height * shape.width, &rng);
  const ConvRun serial = RunConv(1, x, dy);
  for (int threads : {2, 8}) {
    const ConvRun parallel = RunConv(threads, x, dy);
    ExpectBitwiseEqual(serial.out, parallel.out);
    ExpectBitwiseEqual(serial.dx, parallel.dx);
    ExpectBitwiseEqual(serial.gw, parallel.gw);
    ExpectBitwiseEqual(serial.gb, parallel.gb);
  }
}

// -------------------------------------------------- batched density paths

TEST(BatchedDensityTest, GaussianBatchMatchesPerSample) {
  ThreadCountGuard guard;
  Rng rng(16);
  const Matrix train = RandomMatrix(200, 12, &rng);
  const Result<Gaussian> fit = Gaussian::Fit(train, CovarianceConfig{});
  ASSERT_TRUE(fit.ok());
  const Gaussian& g = fit.value();
  const Matrix query = RandomMatrix(301, 12, &rng);
  const std::vector<double> batch = g.LogPdfBatch(query);
  ASSERT_EQ(batch.size(), query.rows());
  for (std::size_t i = 0; i < query.rows(); ++i) {
    // The batched solve replays the per-sample operation order, so the
    // match is exact, not approximate.
    EXPECT_EQ(batch[i], g.LogPdf(query.Row(i))) << "row " << i;
  }
  // And bitwise identical for any thread count.
  for (int threads : {1, 8}) {
    SetParallelThreadCount(threads);
    const std::vector<double> again = g.LogPdfBatch(query);
    for (std::size_t i = 0; i < query.rows(); ++i) {
      EXPECT_EQ(again[i], batch[i]);
    }
  }
}

// Fits a FairDensityEstimator on a random binary-labeled pool.
FairDensityEstimator FitFairEstimator(Rng* rng, const Matrix& pool,
                                      std::vector<int>* labels,
                                      std::vector<int>* sensitive) {
  labels->resize(pool.rows());
  sensitive->resize(pool.rows());
  for (std::size_t i = 0; i < pool.rows(); ++i) {
    (*labels)[i] = rng->Uniform() < 0.5 ? 0 : 1;
    (*sensitive)[i] = rng->Uniform() < 0.5 ? -1 : 1;
  }
  Result<FairDensityEstimator> fit =
      FairDensityEstimator::Fit(pool, *labels, *sensitive,
                                CovarianceConfig{});
  EXPECT_TRUE(fit.ok());
  return std::move(fit).value();
}

TEST(BatchedDensityTest, FairMarginalBatchMatchesPerSample) {
  Rng rng(17);
  const Matrix pool = RandomMatrix(160, 6, &rng);
  std::vector<int> labels, sensitive;
  const FairDensityEstimator est =
      FitFairEstimator(&rng, pool, &labels, &sensitive);
  const Matrix query = RandomMatrix(123, 6, &rng);
  const std::vector<double> batch = est.LogMarginalDensityBatch(query);
  for (std::size_t i = 0; i < query.rows(); ++i) {
    EXPECT_NEAR(batch[i], est.LogMarginalDensity(query.Row(i)), 1e-12);
  }
}

TEST(BatchedDensityTest, FairComponentBatchMatchesPerSample) {
  Rng rng(18);
  const Matrix pool = RandomMatrix(140, 5, &rng);
  std::vector<int> labels, sensitive;
  const FairDensityEstimator est =
      FitFairEstimator(&rng, pool, &labels, &sensitive);
  const Matrix query = RandomMatrix(77, 5, &rng);
  Matrix comp;
  est.ComponentLogPdfBatch(query, &comp);
  ASSERT_EQ(comp.rows(), query.rows());
  ASSERT_EQ(comp.cols(),
            static_cast<std::size_t>(FairDensityEstimator::kNumClasses *
                                     FairDensityEstimator::kNumGroups));
  for (std::size_t i = 0; i < query.rows(); ++i) {
    const std::vector<double> z = query.Row(i);
    for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
      for (int s : {-1, 1}) {
        const auto idx = static_cast<std::size_t>(
            FairDensityEstimator::ComponentIndex(y, s));
        EXPECT_EQ(comp(i, idx), est.LogComponentDensity(z, y, s));
      }
    }
  }
}

TEST(BatchedDensityTest, GroupedBatchMatchesPerSampleWithMissingGroup) {
  Rng rng(19);
  const Matrix pool = RandomMatrix(150, 4, &rng);
  std::vector<int> labels(pool.rows());
  std::vector<int> sensitive(pool.rows());
  for (std::size_t i = 0; i < pool.rows(); ++i) {
    labels[i] = rng.Uniform() < 0.5 ? 0 : 1;
    // Group 7 is declared but never observed for class 1, so LogDeltaG
    // exercises the any_missing branch for that class.
    const double u = rng.Uniform();
    sensitive[i] = u < 0.4 ? 2 : (u < 0.8 || labels[i] == 1 ? 5 : 7);
  }
  Result<GroupedDensityEstimator> fit = GroupedDensityEstimator::Fit(
      pool, labels, sensitive, 2, {2, 5, 7}, CovarianceConfig{});
  ASSERT_TRUE(fit.ok());
  const GroupedDensityEstimator& est = fit.value();
  const Matrix query = RandomMatrix(88, 4, &rng);
  const std::vector<double> marginal = est.LogMarginalDensityBatch(query);
  for (std::size_t i = 0; i < query.rows(); ++i) {
    EXPECT_NEAR(marginal[i], est.LogMarginalDensity(query.Row(i)), 1e-12);
  }
  for (int label = 0; label < 2; ++label) {
    const std::vector<double> delta = est.LogDeltaGBatch(query, label);
    for (std::size_t i = 0; i < query.rows(); ++i) {
      const double expected = est.LogDeltaG(query.Row(i), label);
      if (std::isfinite(expected)) {
        EXPECT_NEAR(delta[i], expected, 1e-12);
      } else {
        EXPECT_EQ(delta[i], expected);
      }
    }
  }
}

// ---------------------------------------------------- pool-scoring parity

// Reference implementation of the unfairness term using the per-sample
// public APIs, mirroring core/fair_score.cc's LogAbsExpDiff.
double ReferenceLogUnfairness(const FairDensityEstimator& est,
                              const std::vector<double>& z,
                              const Matrix& proba, std::size_t i) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> terms;
  for (int c = 0; c < FairDensityEstimator::kNumClasses; ++c) {
    double lp = 0.0, ln = 0.0;
    est.ComponentLogDensities(z, c, &lp, &ln);
    double log_delta = kNegInf;
    if (std::isfinite(lp) && std::isfinite(ln)) {
      const double hi = lp > ln ? lp : ln;
      const double gap = hi - (lp > ln ? ln : lp);
      if (gap >= 1e-300) log_delta = hi + std::log1p(-std::exp(-gap));
    } else if (std::isfinite(lp) || std::isfinite(ln)) {
      log_delta = std::isfinite(lp) ? lp : ln;
    }
    const double pc = proba(i, static_cast<std::size_t>(c));
    if (std::isfinite(log_delta) && pc > 1e-12) {
      terms.push_back(std::log(pc) + log_delta);
    }
  }
  return terms.empty() ? kNegInf : LogSumExp(terms);
}

TEST(BatchedDensityTest, FactionScoresMatchPerSampleReference) {
  Rng rng(20);
  const Matrix pool = RandomMatrix(180, 6, &rng);
  std::vector<int> labels, sensitive;
  const FairDensityEstimator est =
      FitFairEstimator(&rng, pool, &labels, &sensitive);
  const Matrix query = RandomMatrix(97, 6, &rng);
  Matrix proba(query.rows(), 2);
  for (std::size_t i = 0; i < query.rows(); ++i) {
    const double p = rng.Uniform();
    proba(i, 0) = p;
    proba(i, 1) = 1.0 - p;
  }
  const Result<std::vector<FactionScore>> scores =
      ComputeFactionScores(est, query, proba, 0.7, /*fair_select=*/true);
  ASSERT_TRUE(scores.ok());
  for (std::size_t i = 0; i < query.rows(); ++i) {
    const std::vector<double> z = query.Row(i);
    EXPECT_NEAR(scores.value()[i].log_density, est.LogMarginalDensity(z),
                1e-12);
    const double ref = ReferenceLogUnfairness(est, z, proba, i);
    if (std::isfinite(ref)) {
      EXPECT_NEAR(scores.value()[i].log_unfairness, ref, 1e-12);
    } else {
      EXPECT_EQ(scores.value()[i].log_unfairness, ref);
    }
  }
}

TEST(BatchedDensityTest, FactionScoresBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(21);
  const Matrix pool = RandomMatrix(170, 8, &rng);
  std::vector<int> labels, sensitive;
  const FairDensityEstimator est =
      FitFairEstimator(&rng, pool, &labels, &sensitive);
  const Matrix query = RandomMatrix(111, 8, &rng);
  Matrix proba(query.rows(), 2);
  for (std::size_t i = 0; i < query.rows(); ++i) {
    const double p = rng.Uniform();
    proba(i, 0) = p;
    proba(i, 1) = 1.0 - p;
  }
  SetParallelThreadCount(1);
  const Result<std::vector<FactionScore>> serial =
      ComputeFactionScores(est, query, proba, 0.7, /*fair_select=*/true);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 8}) {
    SetParallelThreadCount(threads);
    const Result<std::vector<FactionScore>> parallel =
        ComputeFactionScores(est, query, proba, 0.7, /*fair_select=*/true);
    ASSERT_TRUE(parallel.ok());
    for (std::size_t i = 0; i < query.rows(); ++i) {
      EXPECT_EQ(parallel.value()[i].u, serial.value()[i].u);
      EXPECT_EQ(parallel.value()[i].log_density,
                serial.value()[i].log_density);
      EXPECT_EQ(parallel.value()[i].log_unfairness,
                serial.value()[i].log_unfairness);
    }
  }
}


TEST(ParallelDeterminismTest, FusedLossBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(311);
  const std::size_t n = 500, c = 4;
  Matrix logits = RandomMatrix(n, c, &rng);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % c);

  SetParallelThreadCount(1);
  Matrix d1;
  const double l1 = FusedSoftmaxCrossEntropy(logits, labels, &d1);
  SetParallelThreadCount(8);
  Matrix d8;
  const double l8 = FusedSoftmaxCrossEntropy(logits, labels, &d8);
  EXPECT_EQ(l1, l8);
  ExpectBitwiseEqual(d1, d8);
  // And both match the serial two-pass reference exactly.
  Matrix d_ref;
  const double ref = SoftmaxCrossEntropy(logits, labels, &d_ref);
  EXPECT_EQ(ref, l8);
  ExpectBitwiseEqual(d_ref, d8);
}

TEST(ParallelDeterminismTest,
     IncrementalDensityBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(312);
  const std::size_t d = 5;
  CovarianceConfig config;
  Result<Gaussian> g = Gaussian::Fit(RandomMatrix(300, d, &rng), config);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g.value().Update(RandomMatrix(40, d, &rng), config).ok());
  const Matrix probes = RandomMatrix(700, d, &rng);

  SetParallelThreadCount(1);
  const std::vector<double> one = g.value().LogPdfBatch(probes);
  SetParallelThreadCount(8);
  const std::vector<double> eight = g.value().LogPdfBatch(probes);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i], eight[i]) << "probe " << i;
  }
}

}  // namespace
}  // namespace faction
