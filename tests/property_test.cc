// Property-style parameterized sweeps over randomized inputs: invariants
// that must hold for any size/seed combination.
#include <cmath>

#include "common/rng.h"
#include "density/gaussian.h"
#include "fairness/metrics.h"
#include "fairness/relaxed.h"
#include "gtest/gtest.h"
#include "stream/selection.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace faction {
namespace {

struct SizeSeed {
  std::size_t size;
  std::uint64_t seed;
};

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian();
  return m;
}

// ------------------------------------------------ tensor algebra sweeps

class TensorProperty : public ::testing::TestWithParam<SizeSeed> {};

TEST_P(TensorProperty, TransposeDistributesOverProduct) {
  Rng rng(GetParam().seed);
  const std::size_t n = GetParam().size;
  const Matrix a = RandomMatrix(n, n + 1, &rng);
  const Matrix b = RandomMatrix(n + 1, n + 2, &rng);
  // (AB)^T == B^T A^T
  const Matrix left = Transpose(MatMul(a, b));
  const Matrix right = MatMul(Transpose(b), Transpose(a));
  EXPECT_LT(MaxAbsDiff(left, right), 1e-9);
}

TEST_P(TensorProperty, SoftmaxRowsAreDistributions) {
  Rng rng(GetParam().seed + 1);
  const Matrix logits = RandomMatrix(GetParam().size, 4, &rng);
  const Matrix p = SoftmaxRows(Scale(logits, 10.0));
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GE(p(i, j), 0.0);
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(TensorProperty, LogSumExpBounds) {
  Rng rng(GetParam().seed + 2);
  std::vector<double> xs(GetParam().size + 1);
  double mx = -1e300;
  for (double& x : xs) {
    x = rng.Gaussian(0.0, 50.0);
    mx = std::max(mx, x);
  }
  const double lse = LogSumExp(xs);
  EXPECT_GE(lse, mx - 1e-9);
  EXPECT_LE(lse, mx + std::log(static_cast<double>(xs.size())) + 1e-9);
}

TEST_P(TensorProperty, CholeskyRoundTrip) {
  Rng rng(GetParam().seed + 3);
  const std::size_t n = GetParam().size;
  const Matrix b = RandomMatrix(n, n, &rng);
  Matrix a = MatMulBt(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  const Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_LT(MaxAbsDiff(MatMulBt(l.value(), l.value()), a), 1e-8);
  // Solving against a random rhs round-trips.
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian();
  std::vector<double> rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) rhs[i] += a(i, j) * x[j];
  }
  const std::vector<double> solved = CholeskySolve(l.value(), rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(solved[i], x[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TensorProperty,
    ::testing::Values(SizeSeed{2, 11}, SizeSeed{3, 22}, SizeSeed{5, 33},
                      SizeSeed{8, 44}, SizeSeed{13, 55}, SizeSeed{21, 66}),
    [](const ::testing::TestParamInfo<SizeSeed>& info) {
      return "n" + std::to_string(info.param.size);
    });

// ---------------------------------------------------- selection sweeps

class SelectionProperty : public ::testing::TestWithParam<SizeSeed> {};

TEST_P(SelectionProperty, NormalizeBoundsAndMonotone) {
  Rng rng(GetParam().seed);
  std::vector<double> scores(GetParam().size + 2);
  for (double& s : scores) s = rng.Gaussian(0.0, 100.0);
  const std::vector<double> norm = MinMaxNormalize(scores);
  for (double v : norm) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Order preservation.
  for (std::size_t i = 0; i < scores.size(); ++i) {
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (scores[i] < scores[j]) {
        EXPECT_LE(norm[i], norm[j] + 1e-12);
      }
    }
  }
}

TEST_P(SelectionProperty, BernoulliSelectIsPermutationSubset) {
  Rng rng(GetParam().seed + 1);
  std::vector<double> omega(GetParam().size + 2);
  for (double& w : omega) w = rng.Uniform();
  const std::size_t batch = omega.size() / 2 + 1;
  const std::vector<std::size_t> picked =
      BernoulliSelect(omega, 1.5, batch, &rng);
  EXPECT_EQ(picked.size(), std::min(batch, omega.size()));
  std::vector<bool> seen(omega.size(), false);
  for (std::size_t idx : picked) {
    ASSERT_LT(idx, omega.size());
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST_P(SelectionProperty, TopKMatchesSortPrefix) {
  Rng rng(GetParam().seed + 2);
  std::vector<double> scores(GetParam().size + 2);
  for (double& s : scores) s = rng.Gaussian();
  const std::size_t k = scores.size() / 2;
  const std::vector<std::size_t> top = TopK(scores, k);
  // Verify the selected scores dominate the unselected ones.
  double min_top = 1e300;
  for (std::size_t idx : top) min_top = std::min(min_top, scores[idx]);
  std::vector<bool> chosen(scores.size(), false);
  for (std::size_t idx : top) chosen[idx] = true;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (!chosen[i]) {
      EXPECT_LE(scores[i], min_top + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectionProperty,
    ::testing::Values(SizeSeed{1, 7}, SizeSeed{4, 17}, SizeSeed{16, 27},
                      SizeSeed{64, 37}, SizeSeed{256, 47}),
    [](const ::testing::TestParamInfo<SizeSeed>& info) {
      return "n" + std::to_string(info.param.size);
    });

// ------------------------------------------------------ fairness sweeps

class FairnessProperty : public ::testing::TestWithParam<SizeSeed> {};

TEST_P(FairnessProperty, MetricsWithinBounds) {
  Rng rng(GetParam().seed);
  const std::size_t n = GetParam().size + 4;
  std::vector<int> yhat(n), y(n), s(n);
  for (std::size_t i = 0; i < n; ++i) {
    yhat[i] = rng.Bernoulli(0.5) ? 1 : 0;
    y[i] = rng.Bernoulli(0.5) ? 1 : 0;
    s[i] = rng.Bernoulli(0.5) ? 1 : -1;
  }
  const Result<double> ddp = DemographicParityDifference(yhat, s);
  if (ddp.ok()) {
    EXPECT_GE(ddp.value(), 0.0);
    EXPECT_LE(ddp.value(), 1.0);
  }
  const Result<double> eod = EqualizedOddsDifference(yhat, y, s);
  if (eod.ok()) {
    EXPECT_GE(eod.value(), 0.0);
    EXPECT_LE(eod.value(), 1.0);
  }
  const Result<double> mi = MutualInformation(yhat, s);
  if (mi.ok()) {
    EXPECT_GE(mi.value(), 0.0);
    EXPECT_LE(mi.value(), std::log(2.0) + 1e-12);
  }
}

TEST_P(FairnessProperty, RelaxedNotionIsLinearInScores) {
  // v(a*h1 + b*h2) == a*v(h1) + b*v(h2): the linearity Definition 1's
  // relaxation is designed to have (it is what makes the constraint
  // convex).
  Rng rng(GetParam().seed + 1);
  const std::size_t n = GetParam().size + 4;
  std::vector<int> s(n);
  std::vector<double> h1(n), h2(n), combo(n);
  bool has_pos = false, has_neg = false;
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = rng.Bernoulli(0.5) ? 1 : -1;
    has_pos |= s[i] == 1;
    has_neg |= s[i] == -1;
    h1[i] = rng.Uniform();
    h2[i] = rng.Uniform();
    combo[i] = 0.3 * h1[i] + 0.7 * h2[i];
  }
  if (!has_pos || !has_neg) return;  // degenerate draw
  const double v1 =
      RelaxedFairness(FairnessNotion::kDdp, h1, s, {}).value_or(0.0);
  const double v2 =
      RelaxedFairness(FairnessNotion::kDdp, h2, s, {}).value_or(0.0);
  const double vc =
      RelaxedFairness(FairnessNotion::kDdp, combo, s, {}).value_or(0.0);
  EXPECT_NEAR(vc, 0.3 * v1 + 0.7 * v2, 1e-9);
}

TEST_P(FairnessProperty, GaussianLogPdfMatchesDirectFormula) {
  // LogPdf computed via Cholesky equals the direct formula with the
  // explicit inverse.
  Rng rng(GetParam().seed + 2);
  const std::size_t d = 2 + GetParam().size % 4;
  Matrix samples(50 + GetParam().size, d);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples.data()[i] = rng.Gaussian();
  }
  CovarianceConfig config;
  const Result<Gaussian> g = Gaussian::Fit(samples, config);
  ASSERT_TRUE(g.ok());
  std::vector<double> z(d);
  for (double& v : z) v = rng.Gaussian();
  const double maha = g.value().MahalanobisSquared(z);
  const double direct =
      -0.5 * (d * std::log(2.0 * M_PI) + g.value().log_det() + maha);
  EXPECT_NEAR(g.value().LogPdf(z), direct, 1e-10);
  EXPECT_GE(maha, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FairnessProperty,
    ::testing::Values(SizeSeed{8, 5}, SizeSeed{32, 15}, SizeSeed{128, 25},
                      SizeSeed{512, 35}),
    [](const ::testing::TestParamInfo<SizeSeed>& info) {
      return "n" + std::to_string(info.param.size);
    });

}  // namespace
}  // namespace faction
