// Parity suite for the SIMD micro-kernel compute layer (tensor/simd.h):
// every dispatch tier must be bitwise-identical to the retained blocked
// references, at every thread count, over odd shapes and adversarial
// values (negative zeros, denormals). This is the enforcement arm of the
// determinism contract in DESIGN.md §12.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "density/gaussian.h"
#include "nn/conv_kernels.h"
#include "nn/loss.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

#include "gtest/gtest.h"

namespace faction {
namespace {

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> out;
  for (SimdLevel level :
       {SimdLevel::kGeneric, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (SimdLevelSupported(level)) out.push_back(level);
  }
  return out;
}

// Restores the dispatched tier when a test scope ends.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : saved_(ActiveSimdLevel()) {
    EXPECT_TRUE(SetSimdLevel(level).ok());
  }
  ~ScopedSimdLevel() { (void)SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ParallelThreadCount()) {}
  ~ThreadCountGuard() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

// Gaussian values seasoned with signed zeros and denormals: the values a
// naive SIMD kernel is most likely to reassociate or flush differently.
Matrix TrickyMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian();
  for (std::size_t i = 0; i < m.size(); i += 7) {
    m.data()[i] = (i % 14 == 0) ? 0.0 : -0.0;
  }
  for (std::size_t i = 3; i < m.size(); i += 11) {
    m.data()[i] = (i % 2 == 0 ? 1.0 : -1.0) * 4.9e-324;  // denormal
  }
  return m;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct GemmShape {
  std::size_t m, k, n;
};

const GemmShape kShapes[] = {
    {1, 1, 1},   {2, 3, 4},    {7, 5, 3},     {5, 8, 2},
    {16, 16, 16}, {33, 17, 9},  {64, 48, 16},  {129, 65, 31},
    {64, 16, 48}, {3, 1, 5},    {1, 9, 1},     {12, 66, 20},
};

// Declared first in this binary: checks the env-var dispatch before any
// other test overrides the tier with SetSimdLevel. The ctest leg
// simd_test_generic runs the whole binary with FACTION_SIMD_LEVEL=generic
// through this assertion.
TEST(SimdDispatch, HonorsEnvironmentOnFirstResolve) {
  const char* env = std::getenv("FACTION_SIMD_LEVEL");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "FACTION_SIMD_LEVEL not set";
  }
  Result<SimdLevel> want = ParseSimdLevel(env);
  if (!want.ok() || !SimdLevelSupported(want.value())) {
    GTEST_SKIP() << "requested level unavailable on this host";
  }
  EXPECT_EQ(ActiveSimdLevel(), want.value());
}

TEST(SimdDispatch, Avx512TableBorrowsAvx2LogPdfByDefault) {
  if (std::getenv("FACTION_SIMD_LOGPDF_LEVEL") != nullptr) {
    GTEST_SKIP() << "FACTION_SIMD_LOGPDF_LEVEL pins the solve kernel";
  }
  if (!SimdLevelSupported(SimdLevel::kAvx512) ||
      !SimdLevelSupported(SimdLevel::kAvx2)) {
    GTEST_SKIP() << "needs both wide tiers";
  }
  ScopedSimdLevel avx2(SimdLevel::kAvx2);
  const SimdKernels& avx2_table = ActiveSimd();
  ScopedSimdLevel avx512(SimdLevel::kAvx512);
  const SimdKernels& avx512_table = ActiveSimd();
  // The d=16 solve borrows the avx2 kernel (license-downclock hazard at
  // 512-bit width, see simd.h); the GEMM slots stay the tier's own. The
  // two triangular-solve kernels travel together: the downdate guard
  // solve borrows whenever the log-pdf solve does.
  EXPECT_EQ(avx512_table.logpdf_block, avx2_table.logpdf_block);
  EXPECT_EQ(avx512_table.downdate_solve, avx2_table.downdate_solve);
  EXPECT_NE(avx512_table.matmul_rows, avx2_table.matmul_rows);
  EXPECT_EQ(avx512_table.level, SimdLevel::kAvx512);
  EXPECT_STREQ(avx512_table.name, "avx512");
}

TEST(SimdDispatch, GenericAlwaysSupported) {
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kGeneric));
  EXPECT_FALSE(SupportedLevels().empty());
}

TEST(SimdDispatch, ParseLevelNames) {
  EXPECT_EQ(ParseSimdLevel("generic").value(), SimdLevel::kGeneric);
  EXPECT_EQ(ParseSimdLevel("avx2").value(), SimdLevel::kAvx2);
  EXPECT_EQ(ParseSimdLevel("avx512").value(), SimdLevel::kAvx512);
  EXPECT_TRUE(ParseSimdLevel("native").ok());
  EXPECT_FALSE(ParseSimdLevel("sse9").ok());
  EXPECT_FALSE(ParseSimdLevel("").ok());
}

TEST(SimdDispatch, SetLevelSwitchesActiveTable) {
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel guard(level);
    EXPECT_EQ(ActiveSimdLevel(), level);
    EXPECT_STREQ(ActiveSimd().name, SimdLevelName(level));
  }
}

TEST(SimdDispatch, SetUnsupportedLevelFails) {
  for (SimdLevel level :
       {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!SimdLevelSupported(level)) {
      const SimdLevel before = ActiveSimdLevel();
      EXPECT_FALSE(SetSimdLevel(level).ok());
      EXPECT_EQ(ActiveSimdLevel(), before);
    }
  }
}

TEST(SimdGemm, MatMulBitwiseParityAcrossLevels) {
  Rng rng(1234);
  for (const GemmShape& s : kShapes) {
    const Matrix a = TrickyMatrix(s.m, s.k, &rng);
    const Matrix b = TrickyMatrix(s.k, s.n, &rng);
    Matrix ref;
    ReferenceMatMulInto(a, b, &ref);
    for (SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel guard(level);
      Matrix got;
      MatMulInto(a, b, &got);
      ASSERT_TRUE(BitwiseEqual(ref, got))
          << "MatMul " << s.m << "x" << s.k << "x" << s.n << " at "
          << SimdLevelName(level);
    }
  }
}

TEST(SimdGemm, MatMulBtBitwiseParityAcrossLevels) {
  Rng rng(99);
  for (const GemmShape& s : kShapes) {
    const Matrix a = TrickyMatrix(s.m, s.k, &rng);
    const Matrix b = TrickyMatrix(s.n, s.k, &rng);
    Matrix ref;
    ReferenceMatMulBtInto(a, b, &ref);
    for (SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel guard(level);
      Matrix got;
      MatMulBtInto(a, b, &got);
      ASSERT_TRUE(BitwiseEqual(ref, got))
          << "MatMulBt " << s.m << "x" << s.k << "x" << s.n << " at "
          << SimdLevelName(level);
    }
  }
}

TEST(SimdGemm, MatMulAtBitwiseParityAcrossLevels) {
  Rng rng(77);
  for (const GemmShape& s : kShapes) {
    const Matrix a = TrickyMatrix(s.k, s.m, &rng);
    const Matrix b = TrickyMatrix(s.k, s.n, &rng);
    Matrix ref;
    ReferenceMatMulAtInto(a, b, &ref);
    for (SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel guard(level);
      Matrix got;
      MatMulAtInto(a, b, &got);
      ASSERT_TRUE(BitwiseEqual(ref, got))
          << "MatMulAt " << s.m << "x" << s.k << "x" << s.n << " at "
          << SimdLevelName(level);
    }
  }
}

TEST(SimdGemm, EmptyAndDegenerateShapes) {
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel guard(level);
    // k == 0: the product is a zero matrix even though no k-loop runs.
    Matrix a(3, 0), b(0, 4);
    Matrix out;
    MatMulInto(a, b, &out);
    ASSERT_EQ(out.rows(), 3u);
    ASSERT_EQ(out.cols(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out.data()[i], 0.0);
    }
    Matrix bt_out;
    MatMulBtInto(a, Matrix(5, 0), &bt_out);
    ASSERT_EQ(bt_out.rows(), 3u);
    ASSERT_EQ(bt_out.cols(), 5u);
    for (std::size_t i = 0; i < bt_out.size(); ++i) {
      EXPECT_EQ(bt_out.data()[i], 0.0);
    }
    Matrix at_out;
    MatMulAtInto(Matrix(0, 3), Matrix(0, 2), &at_out);
    ASSERT_EQ(at_out.rows(), 3u);
    ASSERT_EQ(at_out.cols(), 2u);
    for (std::size_t i = 0; i < at_out.size(); ++i) {
      EXPECT_EQ(at_out.data()[i], 0.0);
    }
  }
}

TEST(SimdGemm, ThreadCountDeterminism) {
  Rng rng(555);
  const Matrix a = TrickyMatrix(129, 65, &rng);
  const Matrix b = TrickyMatrix(65, 31, &rng);
  const Matrix bt = TrickyMatrix(31, 65, &rng);
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel guard(level);
    ThreadCountGuard threads;
    Matrix one_mm, one_bt, one_at;
    SetParallelThreadCount(1);
    MatMulInto(a, b, &one_mm);
    MatMulBtInto(a, bt, &one_bt);
    MatMulAtInto(a, a, &one_at);
    Matrix eight_mm, eight_bt, eight_at;
    SetParallelThreadCount(8);
    MatMulInto(a, b, &eight_mm);
    MatMulBtInto(a, bt, &eight_bt);
    MatMulAtInto(a, a, &eight_at);
    EXPECT_TRUE(BitwiseEqual(one_mm, eight_mm)) << SimdLevelName(level);
    EXPECT_TRUE(BitwiseEqual(one_bt, eight_bt)) << SimdLevelName(level);
    EXPECT_TRUE(BitwiseEqual(one_at, eight_at)) << SimdLevelName(level);
  }
}

TEST(SimdConv, ForwardBitwiseParityAcrossLevels) {
  struct Geo {
    std::size_t ic, h, w, kernel, stride, pad, oc;
  };
  const Geo geos[] = {
      {1, 5, 7, 3, 1, 1, 3}, {2, 7, 5, 3, 2, 1, 4}, {3, 8, 8, 3, 1, 1, 5},
      {1, 4, 4, 2, 1, 0, 1}, {2, 6, 5, 3, 1, 2, 2},
  };
  Rng rng(31);
  for (const Geo& geo : geos) {
    ConvGeometry g;
    g.in_channels = geo.ic;
    g.height = geo.h;
    g.width = geo.w;
    g.kernel = geo.kernel;
    g.stride = geo.stride;
    g.pad = geo.pad;
    const Matrix x = TrickyMatrix(1, g.InFlat(), &rng);
    const Matrix w = TrickyMatrix(geo.oc, g.PatchSize(), &rng);
    const Matrix bias = TrickyMatrix(1, geo.oc, &rng);
    std::vector<double> naive(geo.oc * g.OutPositions());
    NaiveConvForward(g, geo.oc, x.data(), w.data(), bias.data(),
                     naive.data());
    for (SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel guard(level);
      std::vector<double> gemm(naive.size(), -1.0);
      ConvScratch scratch;
      GemmConvForward(g, geo.oc, x.data(), w.data(), bias.data(),
                      gemm.data(), &scratch);
      ASSERT_EQ(std::memcmp(naive.data(), gemm.data(),
                            naive.size() * sizeof(double)),
                0)
          << "conv " << geo.ic << "x" << geo.h << "x" << geo.w << " at "
          << SimdLevelName(level);
    }
  }
}

TEST(SimdLoss, FusedSoftmaxCrossEntropyParityAcrossLevels) {
  Rng rng(404);
  for (const std::size_t classes : {2u, 3u, 5u}) {
    Matrix logits = TrickyMatrix(37, classes, &rng);
    // Rows of tied signed zeros: the vector max may pick the other zero's
    // sign; the loss and gradient must be bitwise identical anyway.
    for (std::size_t j = 0; j < classes; ++j) {
      logits(0, j) = (j % 2 == 0) ? 0.0 : -0.0;
      logits(1, j) = (j % 2 == 0) ? -0.0 : 0.0;
      logits(2, j) = -0.0;
    }
    std::vector<int> labels(logits.rows());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<int>(i % classes);
    }
    Matrix ref_grad;
    const double ref_loss = SoftmaxCrossEntropy(logits, labels, &ref_grad);
    for (SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel guard(level);
      Matrix grad;
      const double loss = FusedSoftmaxCrossEntropy(logits, labels, &grad,
                                                   nullptr);
      EXPECT_EQ(std::memcmp(&loss, &ref_loss, sizeof(double)), 0)
          << SimdLevelName(level);
      ASSERT_TRUE(BitwiseEqual(ref_grad, grad)) << SimdLevelName(level);
    }
  }
}

TEST(SimdDensity, LogPdfBatchBitwiseParityAcrossLevels) {
  Rng rng(2024);
  for (const std::size_t d : {1u, 3u, 16u}) {
    const Matrix samples = TrickyMatrix(50, d, &rng);
    Result<Gaussian> fitted = Gaussian::Fit(samples, CovarianceConfig{});
    ASSERT_TRUE(fitted.ok());
    const Gaussian& g = fitted.value();
    // 131 rows: exercises both the vector body and the scalar tail of the
    // 64-wide sample tiles.
    const Matrix zs = TrickyMatrix(131, d, &rng);
    std::vector<double> per_sample(zs.rows());
    std::vector<double> z(d);
    for (std::size_t i = 0; i < zs.rows(); ++i) {
      std::copy(zs.row_data(i), zs.row_data(i) + d, z.begin());
      per_sample[i] = g.LogPdf(z);
    }
    for (SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel guard(level);
      ThreadCountGuard threads;
      for (int nthreads : {1, 8}) {
        SetParallelThreadCount(nthreads);
        std::vector<double> batch(zs.rows(), -1.0);
        g.LogPdfBatch(zs, batch.data());
        ASSERT_EQ(std::memcmp(per_sample.data(), batch.data(),
                              batch.size() * sizeof(double)),
                  0)
            << "d=" << d << " at " << SimdLevelName(level) << " threads "
            << nthreads;
      }
    }
  }
}

// The downdate guard solve (L p = v per column + ascending squared norm)
// must be bitwise identical across tiers: Gaussian::DowndateOne branches
// on the norm, so a single ulp of divergence would flip the PD-guard
// decision on some input and fork the estimator state between tiers.
TEST(SimdDensity, DowndateSolveBitwiseParityAcrossLevels) {
  Rng rng(909);
  for (const std::size_t d : {1u, 3u, 16u}) {
    // Well-conditioned lower factor: positive diagonal, modest fill.
    Matrix chol(d, d, 0.0);
    for (std::size_t j = 0; j < d; ++j) {
      chol(j, j) = 1.5 + 0.1 * static_cast<double>(j);
      for (std::size_t k = 0; k < j; ++k) {
        chol(j, k) = 0.3 * rng.Gaussian();
      }
    }
    for (const std::size_t width : {1u, 4u, 7u}) {
      const Matrix vs0 = TrickyMatrix(d, width, &rng);  // dim-major d x width
      // Naive per-column forward solve + ascending norm: the semantic
      // reference (tolerance), while the generic tier anchors bitwise.
      std::vector<double> want_p(d * width), want_norm(width, 0.0);
      for (std::size_t t = 0; t < width; ++t) {
        for (std::size_t j = 0; j < d; ++j) {
          double acc = vs0.data()[j * width + t];
          for (std::size_t k = 0; k < j; ++k) {
            acc -= chol(j, k) * want_p[k * width + t];
          }
          want_p[j * width + t] = acc / chol(j, j);
        }
        for (std::size_t j = 0; j < d; ++j) {
          const double p = want_p[j * width + t];
          want_norm[t] += p * p;
        }
      }

      std::vector<double> generic_p, generic_norm;
      for (SimdLevel level : SupportedLevels()) {
        ScopedSimdLevel guard(level);
        std::vector<double> vs(vs0.data(), vs0.data() + vs0.size());
        std::vector<double> pnorm2(width, -1.0);
        ActiveSimd().downdate_solve(chol.data(), d, vs.data(), width,
                                    pnorm2.data());
        for (std::size_t i = 0; i < vs.size(); ++i) {
          EXPECT_NEAR(vs[i], want_p[i], 1e-12 * (1.0 + std::fabs(want_p[i])))
              << "d=" << d << " width=" << width << " at "
              << SimdLevelName(level);
        }
        for (std::size_t t = 0; t < width; ++t) {
          EXPECT_NEAR(pnorm2[t], want_norm[t],
                      1e-12 * (1.0 + want_norm[t]))
              << "d=" << d << " width=" << width << " at "
              << SimdLevelName(level);
        }
        if (generic_p.empty()) {
          generic_p = vs;
          generic_norm = pnorm2;
        } else {
          ASSERT_EQ(std::memcmp(generic_p.data(), vs.data(),
                                vs.size() * sizeof(double)),
                    0)
              << "d=" << d << " width=" << width << " at "
              << SimdLevelName(level);
          ASSERT_EQ(std::memcmp(generic_norm.data(), pnorm2.data(),
                                pnorm2.size() * sizeof(double)),
                    0)
              << "d=" << d << " width=" << width << " at "
              << SimdLevelName(level);
        }
      }
    }
  }
}

TEST(SimdHelpers, AxpyDivideMaxParity) {
  Rng rng(808);
  const Matrix xm = TrickyMatrix(1, 133, &rng);
  const std::vector<double> x(xm.data(), xm.data() + xm.size());
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel guard(level);
    const SimdKernels& kern = ActiveSimd();
    std::vector<double> ref(x.size()), got(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ref[i] = got[i] = 0.25 * static_cast<double>(i) - 3.0;
    }
    const double alpha = -1.7;
    for (std::size_t i = 0; i < x.size(); ++i) ref[i] += alpha * x[i];
    kern.axpy(alpha, x.data(), got.data(), x.size());
    ASSERT_EQ(std::memcmp(ref.data(), got.data(),
                          ref.size() * sizeof(double)),
              0)
        << SimdLevelName(level);

    const double s = 7.3;
    for (std::size_t i = 0; i < x.size(); ++i) ref[i] /= s;
    kern.divide(got.data(), got.size(), s);
    ASSERT_EQ(std::memcmp(ref.data(), got.data(),
                          ref.size() * sizeof(double)),
              0)
        << SimdLevelName(level);

    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{17},
                          std::size_t{133}}) {
      double mx = x[0];
      for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
      EXPECT_EQ(kern.row_max(x.data(), n), mx)
          << SimdLevelName(level) << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace faction
