// Allocation-audit layer tests (DESIGN.md §13).
//
// The centerpiece is the steady-state gate: with FACTION_ALLOC_AUDIT
// compiled in, a StreamingFaction driven past its warm-up must serve
// every subsequent arrival — ShouldQuery plus the non-refit ProvideLabel
// fold — with *zero* heap allocations on the calling thread. The other
// tests pin the audit API itself: counter tracking, count-mode ban
// tallies, allow-scope exemption, and the fatal ban's abort.
//
// All audit-dependent tests GTEST_SKIP in trees built without the
// FACTION_ALLOC_AUDIT option, so this binary is safe in every preset;
// the dedicated CI job builds with the option ON and makes the gate
// binding.
#include "common/alloc_audit.h"

#include <cstddef>
#include <memory>
#include <vector>

#include "gtest/gtest.h"

#include "common/rng.h"
#include "core/streaming_faction.h"
#include "data/dataset.h"
#include "serve/serve_runtime.h"
#include "serve/session.h"
#include "serve/state_codec.h"

namespace faction {
namespace {

TEST(AllocAudit, ModeMatchesCompileTimeFlag) {
  EXPECT_STREQ(AllocAuditEnabled() ? "on" : "off", AllocAuditMode());
}

TEST(AllocAudit, DisabledBuildReportsZeroStats) {
  if (AllocAuditEnabled()) GTEST_SKIP() << "audit build: stats are live";
  const AllocationStats stats = ThreadAllocationStats();
  EXPECT_EQ(0u, stats.allocs);
  EXPECT_EQ(0u, stats.frees);
  EXPECT_EQ(0u, stats.bytes);
  EXPECT_EQ(0u, stats.peak_bytes);
}

TEST(AllocAudit, CountersTrackAllocationsAndFrees) {
  if (!AllocAuditEnabled()) GTEST_SKIP() << "built without audit";
  constexpr std::size_t kDoubles = 1024;
  const AllocationStats before = ThreadAllocationStats();
  {
    std::vector<double> v(kDoubles, 1.0);
    const AllocationStats mid = ThreadAllocationStats();
    EXPECT_GE(mid.allocs, before.allocs + 1);
    EXPECT_GE(mid.bytes, before.bytes + kDoubles * sizeof(double));
    EXPECT_GE(mid.peak_bytes, kDoubles * sizeof(double));
  }
  const AllocationStats after = ThreadAllocationStats();
  EXPECT_GE(after.frees, before.frees + 1);
}

TEST(AllocAudit, CountBanTalliesViolations) {
  if (!AllocAuditEnabled()) GTEST_SKIP() << "built without audit";
  constexpr std::size_t kDoubles = 256;
  ScopedAllocationBan ban("test.count",
                          ScopedAllocationBan::Mode::kCount);
  EXPECT_EQ(0u, ban.violations());
  EXPECT_EQ(0u, ban.violation_bytes());
  std::vector<double> v(kDoubles, 0.0);
  EXPECT_GE(ban.violations(), 1u);
  EXPECT_GE(ban.violation_bytes(), kDoubles * sizeof(double));
}

TEST(AllocAudit, AllowScopeExemptsFromBan) {
  if (!AllocAuditEnabled()) GTEST_SKIP() << "built without audit";
  ScopedAllocationBan ban("test.allow",
                          ScopedAllocationBan::Mode::kCount);
  {
    ScopedAllocationAllow allow;
    std::vector<double> v(64, 0.0);
  }
  EXPECT_EQ(0u, ban.violations());
  // Stats still observe the exempted allocation; only the ban is waived.
  const AllocationStats stats = ThreadAllocationStats();
  EXPECT_GE(stats.allocs, 1u);
}

TEST(AllocAuditDeathTest, FatalBanAborts) {
  if (!AllocAuditEnabled()) GTEST_SKIP() << "built without audit";
  EXPECT_DEATH(
      {
        ScopedAllocationBan ban("test.fatal",
                                ScopedAllocationBan::Mode::kFatal);
        // A volatile length defeats C++14 allocation elision: the new
        // expression must actually reach the interposed operator.
        volatile std::size_t n = 64;
        std::vector<double> v(n, 0.0);
        (void)v;
      },
      "ScopedAllocationBan violated at site 'test.fatal'");
}

// ---------------------------------------------------------------------------
// The steady-state zero-allocation gate.

StreamingFactionConfig SmallStreamingConfig() {
  StreamingFactionConfig config;
  config.model.input_dim = 6;
  config.model.hidden_dims = {8};
  config.model.num_classes = 2;
  config.train.epochs = 2;
  config.train.batch_size = 16;
  config.warm_start = 24;
  config.burn_in = 6;
  config.refit_interval = 20;
  config.seed = 7;
  return config;
}

// Pre-generates a labeled synthetic stream so the measured loop below
// performs no allocations of its own: two Gaussian class clusters with a
// sensitive-group shift, balanced enough that every (class x group)
// density component exists after the first refit.
std::vector<Example> MakeStream(std::size_t n, std::size_t dim,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    Example& ex = stream[i];
    ex.label = rng.Bernoulli(0.5) ? 1 : 0;
    ex.sensitive = rng.Bernoulli(0.5) ? 1 : -1;
    ex.environment = 0;
    ex.x.resize(dim);
    const double center = ex.label == 1 ? 1.5 : -1.5;
    const double shift = ex.sensitive == 1 ? 0.4 : -0.4;
    for (std::size_t d = 0; d < dim; ++d) {
      ex.x[d] = rng.Gaussian(center + shift, 1.0);
    }
  }
  return stream;
}

TEST(AllocAudit, SteadyStateArrivalsAreAllocationFree) {
  if (!AllocAuditEnabled()) GTEST_SKIP() << "built without audit";
  const StreamingFactionConfig config = SmallStreamingConfig();
  StreamingFaction streaming(config);
  const std::vector<Example> stream =
      MakeStream(600, config.model.input_dim, 17);

  // Arrivals before this index warm every arena shape, scratch buffer,
  // and density component across several refit cycles; afterwards the
  // gate is binding.
  constexpr std::size_t kWarmupArrivals = 400;

  // Mirror of StreamingFaction's private refit trigger so the (allocating,
  // FACTION_COLD) Refit arrivals can be excluded from the measurement:
  // ProvideLabel refits when the post-append label count reaches
  // refit_interval, or on the first arrival whose append brings the pool
  // to warm_start.
  std::size_t labels_since_refit = 0;
  bool trained_once = false;
  std::size_t measured_queries = 0;
  std::size_t measured_folds = 0;

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Example& ex = stream[i];
    const bool measure = i >= kWarmupArrivals;

    AllocationStats before = ThreadAllocationStats();
    const Result<bool> take = streaming.ShouldQuery(ex);
    AllocationStats after = ThreadAllocationStats();
    ASSERT_TRUE(take.ok()) << take.status().ToString();
    if (measure) {
      EXPECT_EQ(before.allocs, after.allocs)
          << "ShouldQuery allocated on arrival " << i << " ("
          << after.bytes - before.bytes << " bytes)";
      ++measured_queries;
    }
    if (!take.value()) continue;

    const bool will_refit =
        labels_since_refit + 1 >= config.refit_interval ||
        (!trained_once && streaming.pool_size() + 1 >= config.warm_start);
    if (will_refit) {
      ASSERT_TRUE(streaming.ProvideLabel(ex).ok());
      labels_since_refit = 0;
      trained_once = true;
      continue;
    }
    before = ThreadAllocationStats();
    const Status fold = streaming.ProvideLabel(ex);
    after = ThreadAllocationStats();
    ASSERT_TRUE(fold.ok()) << fold.ToString();
    ++labels_since_refit;
    if (measure) {
      EXPECT_EQ(before.allocs, after.allocs)
          << "ProvideLabel fold allocated on arrival " << i << " ("
          << after.bytes - before.bytes << " bytes)";
      ++measured_folds;
    }
  }

  // The gate must not be vacuous: the post-warmup window has to contain a
  // healthy number of both measured operations.
  EXPECT_GE(measured_queries, 100u);
  EXPECT_GE(measured_folds, 10u);
  EXPECT_TRUE(streaming.has_estimator());
  EXPECT_GT(streaming.pool_size(), config.warm_start);
}

// The sliding-window variant of the same gate (PR 8): with density_window
// set, every steady-state fold past the window first evicts the oldest
// ring entry through the rank-1 Cholesky downdate before absorbing the
// new embedding. The ring is pre-sized in the constructor and the
// downdate works entirely in the estimator's cached factors plus the
// caller's scratch, so the evict -> downdate -> fold arrival must stay
// exactly as allocation-free as the grow-only path.
TEST(AllocAudit, WindowedSteadyStateArrivalsAreAllocationFree) {
  if (!AllocAuditEnabled()) GTEST_SKIP() << "built without audit";
  StreamingFactionConfig config = SmallStreamingConfig();
  config.density_window = 30;  // smaller than the warmed pool: evictions fire
  config.density_decay = 0.98;
  StreamingFaction streaming(config);
  const std::vector<Example> stream =
      MakeStream(600, config.model.input_dim, 17);

  constexpr std::size_t kWarmupArrivals = 400;

  std::size_t labels_since_refit = 0;
  bool trained_once = false;
  std::size_t measured_queries = 0;
  std::size_t measured_folds = 0;

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Example& ex = stream[i];
    const bool measure = i >= kWarmupArrivals;

    AllocationStats before = ThreadAllocationStats();
    const Result<bool> take = streaming.ShouldQuery(ex);
    AllocationStats after = ThreadAllocationStats();
    ASSERT_TRUE(take.ok()) << take.status().ToString();
    if (measure) {
      EXPECT_EQ(before.allocs, after.allocs)
          << "windowed ShouldQuery allocated on arrival " << i << " ("
          << after.bytes - before.bytes << " bytes)";
      ++measured_queries;
    }
    if (!take.value()) continue;

    const bool will_refit =
        labels_since_refit + 1 >= config.refit_interval ||
        (!trained_once && streaming.pool_size() + 1 >= config.warm_start);
    if (will_refit) {
      ASSERT_TRUE(streaming.ProvideLabel(ex).ok());
      labels_since_refit = 0;
      trained_once = true;
      continue;
    }
    before = ThreadAllocationStats();
    const Status fold = streaming.ProvideLabel(ex);
    after = ThreadAllocationStats();
    ASSERT_TRUE(fold.ok()) << fold.ToString();
    ++labels_since_refit;
    if (measure) {
      EXPECT_EQ(before.allocs, after.allocs)
          << "windowed evict+fold allocated on arrival " << i << " ("
          << after.bytes - before.bytes << " bytes)";
      ++measured_folds;
    }
  }

  EXPECT_GE(measured_queries, 100u);
  EXPECT_GE(measured_folds, 10u);
  EXPECT_TRUE(streaming.has_estimator());
}

// The same gate through the serve layer: with the job system in
// synchronous mode (workers = 0) the entire Offer path — mailbox push,
// schedule CAS, job submit, drain, ShouldQuery + fold — runs on the
// calling thread, so the thread-local allocation counters see every byte
// the scheduler touches. Job nodes come from the pre-sized arena and the
// mailbox slots are pre-sized, so a steady-state arrival must allocate
// nothing.
TEST(AllocAudit, ServeOfferPathIsAllocationFreeInSteadyState) {
  if (!AllocAuditEnabled()) GTEST_SKIP() << "built without audit";
  const StreamingFactionConfig config = SmallStreamingConfig();

  ServeRuntimeOptions runtime_options;
  runtime_options.workers = 0;  // synchronous: audit the calling thread
  runtime_options.max_sessions = 1;
  runtime_options.record_latency = false;
  ServeRuntime runtime(runtime_options);

  ServeSessionOptions session_options;
  session_options.stream_id = 1;
  session_options.faction = config;
  session_options.mailbox_capacity = 8;
  session_options.decision_log_capacity = 600;  // recording must be free too
  ServeSession* session = runtime.CreateSession(session_options);

  const std::vector<Example> stream =
      MakeStream(600, config.model.input_dim, 17);
  constexpr std::size_t kWarmupArrivals = 400;

  // Refits are FACTION_COLD and allocate by design; whether an arrival
  // refit is only knowable after the query decision, so the refit mirror
  // runs post-hoc on queries_made()/pool_size() deltas and voids that
  // arrival's measurement.
  std::size_t labels_since_refit = 0;
  bool trained_once = false;
  std::size_t measured = 0;

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::size_t queries_before = session->faction().queries_made();
    const std::size_t pool_before = session->faction().pool_size();

    const AllocationStats before = ThreadAllocationStats();
    const bool accepted = runtime.Offer(session, stream[i]);
    const AllocationStats after = ThreadAllocationStats();
    ASSERT_TRUE(accepted);  // sync mode drains inline: mailbox never fills

    const bool queried =
        session->faction().queries_made() > queries_before;
    bool refit = false;
    if (queried) {
      refit = labels_since_refit + 1 >= config.refit_interval ||
              (!trained_once && pool_before + 1 >= config.warm_start);
      if (refit) {
        labels_since_refit = 0;
        trained_once = true;
      } else {
        ++labels_since_refit;
      }
    }
    if (i >= kWarmupArrivals && !refit) {
      EXPECT_EQ(before.allocs, after.allocs)
          << "serve Offer allocated on arrival " << i << " ("
          << after.bytes - before.bytes << " bytes)";
      ++measured;
    }
  }
  runtime.Drain();

  EXPECT_GE(measured, 150u);
  EXPECT_TRUE(session->faction().has_estimator());
  EXPECT_EQ(stream.size(), session->steps());
  EXPECT_EQ(stream.size(), session->decisions().size());
}

// Checkpoint capture (serve/state_codec.h) runs on the hot drain path:
// once the destination SessionState has been warmed by one capture of the
// same shapes, every subsequent capture must be pure copy-assignment into
// retained capacity — zero allocations, even with the sliding window and
// forgetting-mode Gaussians in play.
TEST(AllocAudit, SnapshotCaptureIsAllocationFreeOnceWarm) {
  if (!AllocAuditEnabled()) GTEST_SKIP() << "built without audit";
  StreamingFactionConfig config = SmallStreamingConfig();
  config.density_window = 30;
  config.density_decay = 0.98;
  StreamingFaction streaming(config);
  const std::vector<Example> stream =
      MakeStream(600, config.model.input_dim, 17);
  for (std::size_t i = 0; i < 400; ++i) {
    if (streaming.ShouldQuery(stream[i]).value()) {
      ASSERT_TRUE(streaming.ProvideLabel(stream[i]).ok());
    }
  }

  SessionState state;
  CaptureSessionState(streaming, &state);  // warm the destination buffers

  // More arrivals between captures, as on the serve path, then a re-warm
  // capture: a pool that grew since the last capture may legitimately
  // extend the destination (amortized-rare, like any pool append)...
  for (std::size_t i = 400; i < 410; ++i) {
    if (streaming.ShouldQuery(stream[i]).value()) {
      ASSERT_TRUE(streaming.ProvideLabel(stream[i]).ok());
    }
  }
  CaptureSessionState(streaming, &state);

  // ...but a capture whose shapes match the previous one (the dominant
  // steady-state case) must be pure copies into retained capacity.
  {
    ScopedAllocationBan ban("checkpoint.capture",
                            ScopedAllocationBan::Mode::kCount);
    const AllocationStats before = ThreadAllocationStats();
    CaptureSessionState(streaming, &state);
    const AllocationStats after = ThreadAllocationStats();
    EXPECT_EQ(before.allocs, after.allocs)
        << "warm snapshot capture allocated "
        << after.bytes - before.bytes << " bytes";
  }
  EXPECT_EQ(streaming.pool_size(), state.pool_size);
  EXPECT_TRUE(state.density.has_value);
  EXPECT_GT(state.ring_size, 0u);
}

}  // namespace
}  // namespace faction
