#include <cmath>
#include <set>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/streams.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace faction {
namespace {

Example MakeExample(std::vector<double> x, int s, int y, int env = 0) {
  Example e;
  e.x = std::move(x);
  e.sensitive = s;
  e.label = y;
  e.environment = env;
  return e;
}

// --------------------------------------------------------------- Dataset

TEST(DatasetTest, AppendAndAccess) {
  Dataset d(2);
  ASSERT_TRUE(d.Append(MakeExample({1.0, 2.0}, 1, 0, 5)).ok());
  ASSERT_TRUE(d.Append(MakeExample({3.0, 4.0}, -1, 1, 6)).ok());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_EQ(d.features()(1, 0), 3.0);
  EXPECT_EQ(d.labels()[1], 1);
  EXPECT_EQ(d.sensitive()[0], 1);
  EXPECT_EQ(d.environments()[1], 6);
  const Example e = d.Get(0);
  EXPECT_EQ(e.x, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(e.environment, 5);
}

TEST(DatasetTest, FeaturesCompactAfterManyAppends) {
  Dataset d(3);
  for (int i = 0; i < 37; ++i) {
    ASSERT_TRUE(
        d.Append(MakeExample({double(i), 0.0, 1.0}, 1, i % 2)).ok());
  }
  // The feature matrix must be exactly n x d even though storage doubles.
  EXPECT_EQ(d.features().rows(), 37u);
  EXPECT_EQ(d.features().cols(), 3u);
  EXPECT_EQ(d.features()(36, 0), 36.0);
}

TEST(DatasetTest, ValidationErrors) {
  Dataset d(2);
  EXPECT_FALSE(d.Append(MakeExample({1.0}, 1, 0)).ok());         // bad dim
  EXPECT_FALSE(d.Append(MakeExample({1.0, 2.0}, 0, 0)).ok());    // bad s
  EXPECT_FALSE(d.Append(MakeExample({1.0, 2.0}, 1, 2)).ok());    // bad y
  EXPECT_TRUE(d.Append(MakeExample({1.0, 2.0}, -1, 1)).ok());
}

TEST(DatasetTest, InfersDimensionFromFirstAppend) {
  Dataset d;
  ASSERT_TRUE(d.Append(MakeExample({1.0, 2.0, 3.0}, 1, 0)).ok());
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_FALSE(d.Append(MakeExample({1.0}, 1, 0)).ok());
}

TEST(DatasetTest, SubsetPreservesOrder) {
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(d.Append(MakeExample({double(i)}, 1, 0)).ok());
  }
  const Dataset sub = d.Subset({7, 2, 9});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.features()(0, 0), 7.0);
  EXPECT_EQ(sub.features()(1, 0), 2.0);
  EXPECT_EQ(sub.features()(2, 0), 9.0);
}

TEST(DatasetTest, AppendAllConcatenates) {
  Dataset a(1), b(1);
  ASSERT_TRUE(a.Append(MakeExample({1.0}, 1, 0)).ok());
  ASSERT_TRUE(b.Append(MakeExample({2.0}, -1, 1)).ok());
  ASSERT_TRUE(b.Append(MakeExample({3.0}, 1, 0)).ok());
  ASSERT_TRUE(a.AppendAll(b).ok());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.features()(2, 0), 3.0);
}

TEST(DatasetTest, GroupCountsAndFractions) {
  Dataset d(1);
  ASSERT_TRUE(d.Append(MakeExample({0.0}, 1, 1)).ok());
  ASSERT_TRUE(d.Append(MakeExample({0.0}, 1, 0)).ok());
  ASSERT_TRUE(d.Append(MakeExample({0.0}, -1, 1)).ok());
  ASSERT_TRUE(d.Append(MakeExample({0.0}, -1, 1)).ok());
  EXPECT_NEAR(d.GroupFraction(), 0.5, 1e-12);
  EXPECT_NEAR(d.PositiveFraction(), 0.75, 1e-12);
  EXPECT_EQ(d.CountGroup(1, 1), 1u);
  EXPECT_EQ(d.CountGroup(1, -1), 2u);
  EXPECT_EQ(d.CountGroup(0, 1), 1u);
  EXPECT_EQ(d.CountGroup(0, -1), 0u);
  EXPECT_NEAR(d.JointProbability(1, -1), 0.5, 1e-12);
  EXPECT_FALSE(d.HasAllGroups());
  ASSERT_TRUE(d.Append(MakeExample({0.0}, -1, 0)).ok());
  EXPECT_TRUE(d.HasAllGroups());
}

TEST(DatasetTest, EmptyDatasetDefaults) {
  Dataset d(4);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.GroupFraction(), 0.0);
  EXPECT_EQ(d.PositiveFraction(), 0.0);
  EXPECT_EQ(d.JointProbability(0, 1), 0.0);
  EXPECT_FALSE(d.HasAllGroups());
}

// ------------------------------------------------------------- Synthetic

TEST(SyntheticTest, BiasRealizedInSamples) {
  EnvironmentSpec env;
  env.class0_mean.assign(4, 0.0);
  env.class1_mean.assign(4, 1.0);
  env.bias = 0.8;
  Rng rng(1);
  std::size_t pos_given_1 = 0, n1 = 0;
  for (int i = 0; i < 20000; ++i) {
    const Example e = SampleFromEnvironment(env, 0, &rng);
    if (e.label == 1) {
      ++n1;
      if (e.sensitive == 1) ++pos_given_1;
    }
  }
  EXPECT_NEAR(static_cast<double>(pos_given_1) / n1, 0.8, 0.02);
}

TEST(SyntheticTest, PositiveFractionControlled) {
  EnvironmentSpec env;
  env.class0_mean.assign(2, 0.0);
  env.class1_mean.assign(2, 1.0);
  env.positive_fraction = 0.3;
  Rng rng(2);
  std::size_t pos = 0;
  for (int i = 0; i < 20000; ++i) {
    pos += SampleFromEnvironment(env, 0, &rng).label;
  }
  EXPECT_NEAR(pos / 20000.0, 0.3, 0.02);
}

TEST(SyntheticTest, SensitiveChannelEncodesGroup) {
  EnvironmentSpec env;
  env.class0_mean.assign(3, 0.0);
  env.class1_mean.assign(3, 0.0);
  env.sensitive_channel = 2;
  env.channel_noise = 0.0;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Example e = SampleFromEnvironment(env, 0, &rng);
    EXPECT_EQ(e.x[2], static_cast<double>(e.sensitive));
  }
}

TEST(SyntheticTest, GroupOffsetShiftsFeatures) {
  EnvironmentSpec env;
  env.class0_mean.assign(2, 0.0);
  env.class1_mean.assign(2, 0.0);
  env.group_offset = {2.0, 0.0};
  env.noise = 0.1;
  env.bias = 0.5;
  Rng rng(4);
  double mean_pos = 0.0, mean_neg = 0.0;
  std::size_t n_pos = 0, n_neg = 0;
  for (int i = 0; i < 4000; ++i) {
    const Example e = SampleFromEnvironment(env, 0, &rng);
    if (e.sensitive == 1) {
      mean_pos += e.x[0];
      ++n_pos;
    } else {
      mean_neg += e.x[0];
      ++n_neg;
    }
  }
  EXPECT_NEAR(mean_pos / n_pos, 1.0, 0.05);
  EXPECT_NEAR(mean_neg / n_neg, -1.0, 0.05);
}

TEST(SyntheticTest, PairwiseRotationIsOrthogonal) {
  const Matrix r = PairwiseRotation(6, 30.0);
  const Matrix prod = MatMulBt(r, r);
  EXPECT_LT(MaxAbsDiff(prod, Matrix::Identity(6)), 1e-12);
}

TEST(SyntheticTest, PairwiseRotationZeroIsIdentity) {
  EXPECT_LT(MaxAbsDiff(PairwiseRotation(4, 0.0), Matrix::Identity(4)),
            1e-12);
}

TEST(SyntheticTest, RotationAppliedToSamples) {
  EnvironmentSpec env;
  env.class0_mean = {5.0, 0.0};
  env.class1_mean = {5.0, 0.0};
  env.noise = 1e-6;
  env.bias = 0.5;
  env.rotation = PairwiseRotation(2, 90.0);
  Rng rng(5);
  const Example e = SampleFromEnvironment(env, 0, &rng);
  // (5, 0) rotated by 90 degrees -> (0, 5).
  EXPECT_NEAR(e.x[0], 0.0, 1e-3);
  EXPECT_NEAR(e.x[1], 5.0, 1e-3);
}

TEST(SyntheticTest, ShiftApplied) {
  EnvironmentSpec env;
  env.class0_mean = {0.0};
  env.class1_mean = {0.0};
  env.noise = 1e-6;
  env.shift = {10.0};
  Rng rng(6);
  EXPECT_NEAR(SampleFromEnvironment(env, 0, &rng).x[0], 10.0, 1e-3);
}

TEST(SyntheticTest, DrawPrototypesOnSphere) {
  Rng rng(7);
  const auto protos = DrawPrototypes(5, 8, 3.0, &rng);
  ASSERT_EQ(protos.size(), 5u);
  for (const auto& p : protos) {
    EXPECT_NEAR(Norm2(p), 3.0, 1e-9);
  }
}

TEST(SyntheticTest, GenerateStreamValidation) {
  Rng rng(8);
  EXPECT_FALSE(GenerateStream({}, {}, &rng).ok());
  EnvironmentSpec env;
  env.class0_mean = {0.0};
  env.class1_mean = {0.0};
  // Unknown environment reference.
  EXPECT_FALSE(GenerateStream({env}, {TaskPlan{3, 10}}, &rng).ok());
  // Bad bias.
  EnvironmentSpec bad = env;
  bad.bias = 2.0;
  EXPECT_FALSE(GenerateStream({bad}, {TaskPlan{0, 10}}, &rng).ok());
  // Bad rotation shape.
  EnvironmentSpec badrot = env;
  badrot.rotation = Matrix(2, 2);
  EXPECT_FALSE(GenerateStream({badrot}, {TaskPlan{0, 10}}, &rng).ok());
}

TEST(SyntheticTest, EnvironmentIdsRecorded) {
  EnvironmentSpec env;
  env.class0_mean = {0.0};
  env.class1_mean = {0.0};
  Rng rng(9);
  const Result<std::vector<Dataset>> stream =
      GenerateStream({env, env}, {TaskPlan{1, 5}, TaskPlan{0, 5}}, &rng);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream.value()[0].environments()[0], 1);
  EXPECT_EQ(stream.value()[1].environments()[0], 0);
}

// --------------------------------------------------------------- Streams

struct StreamCase {
  std::string name;
  std::size_t expected_tasks;
};

class PaperStreamTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(PaperStreamTest, ShapeAndContent) {
  StreamScale scale;
  scale.samples_per_task = 120;
  scale.seed = 77;
  const Result<std::vector<Dataset>> stream =
      MakePaperStream(GetParam().name, scale);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream.value().size(), GetParam().expected_tasks);
  for (const Dataset& task : stream.value()) {
    EXPECT_EQ(task.size(), 120u);
    EXPECT_GT(task.dim(), 0u);
    // Tasks contain a mix of labels and groups (overwhelmingly likely at
    // this size given the generators' parameters).
    EXPECT_GT(task.PositiveFraction(), 0.02);
    EXPECT_LT(task.PositiveFraction(), 0.98);
    EXPECT_GT(task.GroupFraction(), 0.02);
    EXPECT_LT(task.GroupFraction(), 0.98);
  }
  // All tasks share the dimension.
  for (const Dataset& task : stream.value()) {
    EXPECT_EQ(task.dim(), stream.value()[0].dim());
  }
}

TEST_P(PaperStreamTest, DeterministicGivenSeed) {
  StreamScale scale;
  scale.samples_per_task = 40;
  scale.seed = 123;
  const Result<std::vector<Dataset>> a =
      MakePaperStream(GetParam().name, scale);
  const Result<std::vector<Dataset>> b =
      MakePaperStream(GetParam().name, scale);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(MaxAbsDiff(a.value()[0].features(), b.value()[0].features()),
            1e-15);
  scale.seed = 124;
  const Result<std::vector<Dataset>> c =
      MakePaperStream(GetParam().name, scale);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(MaxAbsDiff(a.value()[0].features(), c.value()[0].features()),
            1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, PaperStreamTest,
    ::testing::Values(StreamCase{"rcmnist", 12}, StreamCase{"celeba", 12},
                      StreamCase{"fairface", 21}, StreamCase{"ffhq", 12},
                      StreamCase{"nysf", 16}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return info.param.name;
    });

TEST(StreamsTest, RcmnistEnvironmentBiases) {
  // The per-environment label-color correlations {0.9, 0.8, 0.7, 0.6}
  // must be realized in the generated tasks.
  RcmnistConfig config;
  config.scale.samples_per_task = 4000;
  config.scale.seed = 3;
  const Result<std::vector<Dataset>> stream = MakeRcmnistStream(config);
  ASSERT_TRUE(stream.ok());
  for (std::size_t env = 0; env < 4; ++env) {
    const Dataset& task = stream.value()[env * 3];
    std::size_t n1 = 0, pos1 = 0;
    for (std::size_t i = 0; i < task.size(); ++i) {
      if (task.labels()[i] == 1) {
        ++n1;
        if (task.sensitive()[i] == 1) ++pos1;
      }
    }
    EXPECT_NEAR(static_cast<double>(pos1) / n1, config.biases[env], 0.04)
        << "environment " << env;
  }
}

TEST(StreamsTest, NysfHasSixteenEnvironments) {
  NysfConfig config;
  config.scale.samples_per_task = 30;
  const Result<std::vector<Dataset>> stream = MakeNysfStream(config);
  ASSERT_TRUE(stream.ok());
  std::set<int> envs;
  for (const Dataset& task : stream.value()) {
    envs.insert(task.environments()[0]);
  }
  EXPECT_EQ(envs.size(), 16u);
}

TEST(StreamsTest, StationaryStreamSingleEnvironment) {
  StationaryConfig config;
  config.scale.samples_per_task = 50;
  config.num_tasks = 5;
  const Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream.value().size(), 5u);
  for (const Dataset& task : stream.value()) {
    for (int e : task.environments()) EXPECT_EQ(e, 0);
  }
}

TEST(StreamsTest, UnknownNameRejected) {
  StreamScale scale;
  const Result<std::vector<Dataset>> stream =
      MakePaperStream("mnist-3d", scale);
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kNotFound);
}

TEST(StreamsTest, PaperDatasetNamesAllBuildable) {
  StreamScale scale;
  scale.samples_per_task = 25;
  for (const std::string& name : PaperDatasetNames()) {
    EXPECT_TRUE(MakePaperStream(name, scale).ok()) << name;
  }
}

}  // namespace
}  // namespace faction
