#include <cmath>

#include "common/rng.h"
#include "core/presets.h"
#include "data/streams.h"
#include "gtest/gtest.h"
#include "stream/online_learner.h"
#include "stream/strategy.h"

namespace faction {
namespace {

std::vector<Dataset> TinyStream(std::size_t tasks, std::size_t samples,
                                std::uint64_t seed) {
  StationaryConfig config;
  config.scale.samples_per_task = samples;
  config.scale.seed = seed;
  config.dim = 6;
  config.num_tasks = tasks;
  Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
  EXPECT_TRUE(stream.ok());
  return std::move(stream).value();
}

OnlineLearnerConfig TinyConfig(std::size_t dim, const std::string& method,
                               std::uint64_t seed) {
  ExperimentDefaults defaults;
  defaults.budget_per_task = 20;
  defaults.acquisition_batch = 10;
  defaults.warm_start = 20;
  defaults.hidden_dims = {12, 6};
  defaults.epochs = 1;
  return MakeLearnerConfig(defaults, dim, method, seed);
}

// A strategy that records how it was called, for protocol assertions.
class SpyStrategy : public QueryStrategy {
 public:
  std::string name() const override { return "Spy"; }

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override {
    calls.push_back(batch);
    pool_sizes.push_back(context.labeled_pool->size());
    candidate_counts.push_back(context.candidate_features->rows());
    std::vector<std::size_t> picked;
    for (std::size_t i = 0; i < batch; ++i) picked.push_back(i);
    return picked;
  }

  std::vector<std::size_t> calls;
  std::vector<std::size_t> pool_sizes;
  std::vector<std::size_t> candidate_counts;
};

TEST(OnlineLearnerTest, ProtocolCallPattern) {
  const std::vector<Dataset> tasks = TinyStream(3, 100, 1);
  SpyStrategy spy;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 2);
  OnlineLearner learner(config, &spy);
  const Result<RunResult> run = learner.Run(tasks);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // B=20, A=10: two acquisition iterations per task, three tasks.
  EXPECT_EQ(spy.calls.size(), 6u);
  for (std::size_t batch : spy.calls) EXPECT_EQ(batch, 10u);
  // The labeled pool grows monotonically: warm start 20, then +10 each
  // iteration.
  EXPECT_EQ(spy.pool_sizes[0], 20u);
  EXPECT_EQ(spy.pool_sizes[1], 30u);
  EXPECT_EQ(spy.pool_sizes[2], 40u);
  EXPECT_EQ(spy.pool_sizes[3], 50u);
  // Candidate counts shrink as the task is consumed: task 0 starts with
  // 100 - 20 warm-started samples.
  EXPECT_EQ(spy.candidate_counts[0], 80u);
  EXPECT_EQ(spy.candidate_counts[1], 70u);
  EXPECT_EQ(spy.candidate_counts[2], 100u);  // fresh task, no warm start
}

TEST(OnlineLearnerTest, QueriesCappedByBudget) {
  const std::vector<Dataset> tasks = TinyStream(2, 60, 3);
  SpyStrategy spy;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 4);
  OnlineLearner learner(config, &spy);
  const Result<RunResult> run = learner.Run(tasks);
  ASSERT_TRUE(run.ok());
  for (const TaskMetrics& m : run.value().per_task) {
    EXPECT_EQ(m.queries_used, 20u);
  }
  EXPECT_EQ(run.value().total_queries, 40u);
}

TEST(OnlineLearnerTest, TinyTaskConsumedEntirely) {
  // A task smaller than the budget: every sample ends up labeled, via
  // warm start plus queries, without error.
  std::vector<Dataset> tasks = TinyStream(2, 25, 5);
  SpyStrategy spy;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 6);
  OnlineLearner learner(config, &spy);
  const Result<RunResult> run = learner.Run(tasks);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Task 0: 20 warm + 5 queried = all 25. Task 1: 20 queried (budget).
  EXPECT_EQ(run.value().per_task[0].queries_used, 5u);
  EXPECT_EQ(run.value().per_task[1].queries_used, 20u);
}

TEST(OnlineLearnerTest, RejectsBadBatchConfiguration) {
  const std::vector<Dataset> tasks = TinyStream(1, 50, 7);
  SpyStrategy spy;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 8);
  config.acquisition_batch = 0;
  EXPECT_FALSE(OnlineLearner(config, &spy).Run(tasks).ok());
  config.acquisition_batch = 50;
  config.budget_per_task = 20;  // batch > budget
  EXPECT_FALSE(OnlineLearner(config, &spy).Run(tasks).ok());
}

TEST(OnlineLearnerTest, RejectsEmptyStream) {
  SpyStrategy spy;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 9);
  EXPECT_FALSE(OnlineLearner(config, &spy).Run({}).ok());
}

// A strategy returning an out-of-range position must fail the run loudly.
class RogueStrategy : public QueryStrategy {
 public:
  std::string name() const override { return "Rogue"; }
  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t) override {
    return std::vector<std::size_t>{context.candidate_features->rows() + 5};
  }
};

TEST(OnlineLearnerTest, RogueStrategyCaught) {
  const std::vector<Dataset> tasks = TinyStream(1, 60, 11);
  RogueStrategy rogue;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 12);
  const Result<RunResult> run = OnlineLearner(config, &rogue).Run(tasks);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

// A strategy that declines to select ends the task's acquisitions early
// instead of spinning.
class DeclineStrategy : public QueryStrategy {
 public:
  std::string name() const override { return "Decline"; }
  Result<std::vector<std::size_t>> SelectBatch(const SelectionContext&,
                                               std::size_t) override {
    return std::vector<std::size_t>{};
  }
};

TEST(OnlineLearnerTest, DecliningStrategyTerminates) {
  const std::vector<Dataset> tasks = TinyStream(2, 60, 13);
  DeclineStrategy decline;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 14);
  const Result<RunResult> run = OnlineLearner(config, &decline).Run(tasks);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().per_task[0].queries_used, 0u);
}

TEST(OnlineLearnerTest, LearningRateDecaySchedule) {
  // With lr_decay_power = 1 and a spy, we can't observe lr directly, but
  // the run must succeed and remain deterministic.
  const std::vector<Dataset> tasks = TinyStream(3, 60, 15);
  SpyStrategy spy;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 16);
  config.lr_decay_power = 1.0;
  const Result<RunResult> run = OnlineLearner(config, &spy).Run(tasks);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().per_task.size(), 3u);
}

TEST(OnlineLearnerTest, DualAscentRunsAndTracksViolation) {
  const std::vector<Dataset> tasks = TinyStream(4, 80, 17);
  ExperimentDefaults defaults;
  defaults.budget_per_task = 20;
  defaults.acquisition_batch = 10;
  defaults.warm_start = 20;
  defaults.hidden_dims = {12, 6};
  defaults.epochs = 1;
  OnlineLearnerConfig config = MakeLearnerConfig(defaults, 6, "FACTION", 18);
  config.dual_ascent = true;
  config.dual_step = 2.0;
  Result<std::unique_ptr<QueryStrategy>> strategy =
      MakeStrategy("FACTION", defaults);
  ASSERT_TRUE(strategy.ok());
  const Result<RunResult> run =
      OnlineLearner(config, strategy.value().get()).Run(tasks);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  double sum = 0.0;
  for (const TaskMetrics& m : run.value().per_task) {
    sum += m.fairness_violation;
  }
  EXPECT_NEAR(run.value().cumulative_violation, sum, 1e-12);
}

TEST(OnlineLearnerTest, WarmStartZeroStillRuns) {
  const std::vector<Dataset> tasks = TinyStream(2, 60, 19);
  ExperimentDefaults defaults;
  defaults.budget_per_task = 20;
  defaults.acquisition_batch = 10;
  defaults.warm_start = 0;
  defaults.hidden_dims = {12, 6};
  defaults.epochs = 1;
  OnlineLearnerConfig config = MakeLearnerConfig(defaults, 6, "Random", 20);
  Result<std::unique_ptr<QueryStrategy>> strategy =
      MakeStrategy("Random", defaults);
  ASSERT_TRUE(strategy.ok());
  const Result<RunResult> run =
      OnlineLearner(config, strategy.value().get()).Run(tasks);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().per_task[0].queries_used, 20u);
}

TEST(OnlineLearnerTest, PerTaskSecondsPositive) {
  const std::vector<Dataset> tasks = TinyStream(2, 60, 21);
  SpyStrategy spy;
  OnlineLearnerConfig config = TinyConfig(6, "Random", 22);
  const Result<RunResult> run = OnlineLearner(config, &spy).Run(tasks);
  ASSERT_TRUE(run.ok());
  for (const TaskMetrics& m : run.value().per_task) {
    EXPECT_GE(m.seconds, 0.0);
  }
  EXPECT_GE(run.value().total_seconds,
            run.value().per_task[0].seconds);
}

}  // namespace
}  // namespace faction
