#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/fair_score.h"
#include "core/faction_strategy.h"
#include "core/presets.h"
#include "data/streams.h"
#include "gtest/gtest.h"
#include "nn/trainer.h"

namespace faction {
namespace {

// Pool with controllable group separation per class, mirroring the
// density tests but consumed by the scorer.
void BuildScorerPool(double group_gap, std::size_t per_cell, Rng* rng,
                     Matrix* features, std::vector<int>* labels,
                     std::vector<int>* sensitive) {
  features->Resize(per_cell * 4, 2);
  labels->clear();
  sensitive->clear();
  std::size_t row = 0;
  for (int y = 0; y < 2; ++y) {
    for (int s : {-1, 1}) {
      for (std::size_t i = 0; i < per_cell; ++i) {
        (*features)(row, 0) = rng->Gaussian(y * 4.0, 0.6);
        (*features)(row, 1) = rng->Gaussian(s * group_gap / 2.0, 0.6);
        labels->push_back(y);
        sensitive->push_back(s);
        ++row;
      }
    }
  }
}

FairDensityEstimator FitEstimator(double group_gap, Rng* rng) {
  Matrix features;
  std::vector<int> labels, sensitive;
  BuildScorerPool(group_gap, 150, rng, &features, &labels, &sensitive);
  CovarianceConfig config;
  Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(features, labels, sensitive, config);
  FACTION_CHECK(est.ok());
  return std::move(est).value();
}

// ------------------------------------------------------------ FairScore

TEST(FairScoreTest, ShapeAndValidation) {
  Rng rng(1);
  const FairDensityEstimator est = FitEstimator(2.0, &rng);
  Matrix z(5, 2, 0.0);
  Matrix proba(5, 2, 0.5);
  const Result<std::vector<FactionScore>> scores =
      ComputeFactionScores(est, z, proba, 0.5, true);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores.value().size(), 5u);
  // Mismatched probability shape rejected.
  Matrix bad_proba(4, 2, 0.5);
  EXPECT_FALSE(ComputeFactionScores(est, z, bad_proba, 0.5, true).ok());
  Matrix bad_z(5, 3, 0.0);
  EXPECT_FALSE(ComputeFactionScores(est, bad_z, proba, 0.5, true).ok());
}

TEST(FairScoreTest, OodCandidateGetsLowU) {
  // Low density = high epistemic uncertainty = preferred (low u).
  Rng rng(2);
  const FairDensityEstimator est = FitEstimator(0.0, &rng);
  Matrix z(2, 2);
  z(0, 0) = 0.0;   // in-distribution (class 0 center)
  z(0, 1) = 0.0;
  z(1, 0) = 25.0;  // far OOD
  z(1, 1) = 25.0;
  Matrix proba(2, 2, 0.5);
  const Result<std::vector<FactionScore>> scores =
      ComputeFactionScores(est, z, proba, 0.0, true);
  ASSERT_TRUE(scores.ok());
  EXPECT_LT(scores.value()[1].u, scores.value()[0].u);
  EXPECT_GT(scores.value()[0].log_density,
            scores.value()[1].log_density);
}

TEST(FairScoreTest, UnfairCandidatePreferredUnderLambda) {
  // With separated groups, a candidate at one group's center has a large
  // Delta g; a candidate equidistant between groups has a small one. At
  // comparable density, higher lambda must prefer the unfair one.
  Rng rng(3);
  const FairDensityEstimator est = FitEstimator(3.0, &rng);
  Matrix z(2, 2);
  z(0, 0) = 0.0;
  z(0, 1) = 1.5;   // at the (y=0, s=+1) component center: very unfair
  z(1, 0) = 0.0;
  z(1, 1) = 0.0;   // between the group components: fair
  Matrix proba(2, 2);
  proba(0, 0) = 1.0;  // classifier is sure both are class 0
  proba(0, 1) = 0.0;
  proba(1, 0) = 1.0;
  proba(1, 1) = 0.0;
  const Result<std::vector<FactionScore>> scores =
      ComputeFactionScores(est, z, proba, 5.0, true);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores.value()[0].log_unfairness,
            scores.value()[1].log_unfairness);
  EXPECT_LT(scores.value()[0].u, scores.value()[1].u);
}

TEST(FairScoreTest, FairSelectOffDropsUnfairness) {
  Rng rng(4);
  const FairDensityEstimator est = FitEstimator(3.0, &rng);
  Matrix z(3, 2);
  z(0, 1) = 1.5;
  z(1, 1) = -1.5;
  Matrix proba(3, 2, 0.5);
  const Result<std::vector<FactionScore>> scores =
      ComputeFactionScores(est, z, proba, 5.0, false);
  ASSERT_TRUE(scores.ok());
  for (const FactionScore& s : scores.value()) {
    EXPECT_TRUE(std::isinf(s.log_unfairness));
  }
  // With fair_select off, u is exactly the normalized density term.
  const Result<std::vector<FactionScore>> again =
      ComputeFactionScores(est, z, proba, 0.0, true);
  ASSERT_TRUE(again.ok());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(scores.value()[i].u, again.value()[i].u, 1e-9);
  }
}

TEST(FairScoreTest, LambdaZeroMatchesPureDensity) {
  Rng rng(5);
  const FairDensityEstimator est = FitEstimator(2.0, &rng);
  Matrix z(4, 2);
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] = rng.Gaussian();
  Matrix proba(4, 2, 0.5);
  const Result<std::vector<FactionScore>> with =
      ComputeFactionScores(est, z, proba, 0.0, true);
  const Result<std::vector<FactionScore>> without =
      ComputeFactionScores(est, z, proba, 0.0, false);
  ASSERT_TRUE(with.ok() && without.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(with.value()[i].u, without.value()[i].u, 1e-12);
  }
}

TEST(FairScoreTest, ClassProbabilityWeighting) {
  // A candidate the classifier assigns to class 1 must weight class 1's
  // Delta g; flipping the posterior flips the unfairness signal when only
  // class 1's groups are separated... construct: classes share centers
  // but only evaluate weighting via proba extremes at a fixed z.
  Rng rng(6);
  const FairDensityEstimator est = FitEstimator(3.0, &rng);
  Matrix z(1, 2);
  z(0, 0) = 4.0;  // class-1 region
  z(0, 1) = 1.5;  // at s=+1 group center
  Matrix proba_c1(1, 2);
  proba_c1(0, 0) = 0.0;
  proba_c1(0, 1) = 1.0;
  Matrix proba_c0(1, 2);
  proba_c0(0, 0) = 1.0;
  proba_c0(0, 1) = 0.0;
  const Result<std::vector<FactionScore>> as_c1 =
      ComputeFactionScores(est, z, proba_c1, 1.0, true);
  const Result<std::vector<FactionScore>> as_c0 =
      ComputeFactionScores(est, z, proba_c0, 1.0, true);
  ASSERT_TRUE(as_c1.ok() && as_c0.ok());
  // z sits in class 1's territory: class 1's Delta g at z dwarfs class
  // 0's, so weighting by the class-1 posterior yields more unfairness.
  EXPECT_GT(as_c1.value()[0].log_unfairness,
            as_c0.value()[0].log_unfairness);
}

// ------------------------------------------------------ FactionStrategy

struct StrategyHarness {
  explicit StrategyHarness(std::uint64_t seed) : rng(seed) {
    StationaryConfig config;
    config.scale.samples_per_task = 260;
    config.scale.seed = seed;
    config.dim = 6;
    config.num_tasks = 1;
    Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
    FACTION_CHECK(stream.ok());
    const Dataset& all = stream.value()[0];
    std::vector<std::size_t> pool_idx, cand_idx;
    for (std::size_t i = 0; i < 180; ++i) pool_idx.push_back(i);
    for (std::size_t i = 180; i < 260; ++i) cand_idx.push_back(i);
    pool = all.Subset(pool_idx);
    const Dataset cand = all.Subset(cand_idx);
    features = cand.features();
    sensitive = cand.sensitive();
    envs = cand.environments();
    MlpConfig mconfig;
    mconfig.input_dim = 6;
    mconfig.hidden_dims = {12, 6};
    Rng model_rng(seed + 1);
    model = std::make_unique<MlpClassifier>(mconfig, &model_rng);
    TrainConfig tconfig;
    tconfig.epochs = 3;
    Rng train_rng(seed + 2);
    FACTION_CHECK(TrainClassifier(model.get(), pool, tconfig, &train_rng).ok());
  }

  SelectionContext Context() {
    SelectionContext ctx;
    ctx.model = model.get();
    ctx.labeled_pool = &pool;
    ctx.candidate_features = &features;
    ctx.candidate_sensitive = &sensitive;
    ctx.candidate_environments = &envs;
    ctx.rng = &rng;
    return ctx;
  }

  Rng rng;
  Dataset pool;
  Matrix features;
  std::vector<int> sensitive;
  std::vector<int> envs;
  std::unique_ptr<MlpClassifier> model;
};

TEST(FactionStrategyTest, ValidBatch) {
  StrategyHarness h(1);
  FactionStrategyConfig config;
  FactionStrategy strategy(config);
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(h.Context(), 20);
  ASSERT_TRUE(picked.ok()) << picked.status().ToString();
  EXPECT_EQ(picked.value().size(), 20u);
  std::set<std::size_t> unique(picked.value().begin(), picked.value().end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(FactionStrategyTest, NameReflectsAblation) {
  FactionStrategyConfig config;
  EXPECT_EQ(FactionStrategy(config).name(), "FACTION");
  config.fair_select = false;
  EXPECT_EQ(FactionStrategy(config).name(), "FACTION(w/o fair select)");
  config.name_override = "custom";
  EXPECT_EQ(FactionStrategy(config).name(), "custom");
}

TEST(FactionStrategyTest, EmptyPoolFallsBackToRandom) {
  StrategyHarness h(2);
  Dataset empty(6);
  SelectionContext ctx = h.Context();
  ctx.labeled_pool = &empty;
  FactionStrategy strategy(FactionStrategyConfig{});
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(ctx, 10);
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value().size(), 10u);
}

TEST(FactionStrategyTest, SingleClassPoolFallsBack) {
  StrategyHarness h(3);
  std::vector<std::size_t> class0;
  for (std::size_t i = 0; i < h.pool.size(); ++i) {
    if (h.pool.labels()[i] == 0) class0.push_back(i);
  }
  Dataset degenerate = h.pool.Subset(class0);
  SelectionContext ctx = h.Context();
  ctx.labeled_pool = &degenerate;
  FactionStrategy strategy(FactionStrategyConfig{});
  // A single-class pool can still fit (2 of 4 components present), or if
  // both groups are missing it falls back; either way a full batch must
  // come back.
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(ctx, 10);
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value().size(), 10u);
}

TEST(FactionStrategyTest, PrefersOodCandidates) {
  StrategyHarness h(4);
  // Half the candidates are far-OOD; FACTION's density term should pull
  // most selections from them.
  Matrix cands = h.features;
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < cands.cols(); ++j) {
      cands(i, j) = 30.0;
    }
  }
  SelectionContext ctx = h.Context();
  ctx.candidate_features = &cands;
  FactionStrategyConfig config;
  config.lambda = 0.0;  // isolate the density term
  config.alpha = 100.0;  // near-deterministic acceptance order
  FactionStrategy strategy(config);
  const Result<std::vector<std::size_t>> picked =
      strategy.SelectBatch(ctx, 20);
  ASSERT_TRUE(picked.ok());
  std::size_t ood_hits = 0;
  for (std::size_t idx : picked.value()) {
    if (idx < 40) ++ood_hits;
  }
  EXPECT_GE(ood_hits, 15u);
}

// --------------------------------------------------------------- Presets

TEST(PresetsTest, MethodRosters) {
  EXPECT_EQ(AllMethodNames().size(), 8u);
  EXPECT_EQ(FairnessAwareMethodNames().size(), 4u);
  EXPECT_EQ(AblationVariantNames().size(), 5u);
  EXPECT_EQ(AllMethodNames()[0], "FACTION");
}

TEST(PresetsTest, EveryMethodConstructs) {
  ExperimentDefaults defaults;
  for (const std::string& name : AllMethodNames()) {
    const Result<std::unique_ptr<QueryStrategy>> s =
        MakeStrategy(name, defaults);
    ASSERT_TRUE(s.ok()) << name;
    EXPECT_EQ(s.value()->name(), name);
  }
  for (const std::string& name : AblationVariantNames()) {
    const Result<std::unique_ptr<QueryStrategy>> s =
        MakeStrategy(name, defaults);
    ASSERT_TRUE(s.ok()) << name;
    EXPECT_EQ(s.value()->name(), name);
  }
}

TEST(PresetsTest, UnknownMethodRejected) {
  ExperimentDefaults defaults;
  EXPECT_FALSE(MakeStrategy("FACTION++", defaults).ok());
}

TEST(PresetsTest, FairnessPenaltyAssignment) {
  EXPECT_TRUE(MethodUsesFairnessPenalty("FACTION"));
  EXPECT_TRUE(MethodUsesFairnessPenalty("w/o fair select"));
  EXPECT_FALSE(MethodUsesFairnessPenalty("w/o fair reg"));
  EXPECT_FALSE(MethodUsesFairnessPenalty("w/o fair select & fair reg"));
  EXPECT_FALSE(MethodUsesFairnessPenalty("Random"));
  EXPECT_FALSE(MethodUsesFairnessPenalty("QuFUR"));
}

TEST(PresetsTest, LearnerConfigReflectsDefaults) {
  ExperimentDefaults defaults;
  defaults.budget_per_task = 120;
  defaults.acquisition_batch = 30;
  defaults.mu = 1.7;
  const OnlineLearnerConfig config =
      MakeLearnerConfig(defaults, 9, "FACTION", 55);
  EXPECT_EQ(config.budget_per_task, 120u);
  EXPECT_EQ(config.acquisition_batch, 30u);
  EXPECT_EQ(config.model.input_dim, 9u);
  EXPECT_TRUE(config.train.use_fairness_penalty);
  EXPECT_EQ(config.train.fairness.mu, 1.7);
  EXPECT_EQ(config.seed, 55u);
  const OnlineLearnerConfig random_config =
      MakeLearnerConfig(defaults, 9, "Random", 55);
  EXPECT_FALSE(random_config.train.use_fairness_penalty);
}

}  // namespace
}  // namespace faction
