#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/streaming_faction.h"
#include "data/streams.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace faction {
namespace {

StreamingFactionConfig SmallConfig(std::size_t dim = 6) {
  StreamingFactionConfig config;
  config.model.input_dim = dim;
  config.model.hidden_dims = {12, 6};
  config.train.epochs = 2;
  config.warm_start = 30;
  config.burn_in = 5;
  config.refit_interval = 20;
  config.seed = 3;
  return config;
}

EnvironmentSpec SmallEnv(std::size_t dim, Rng* rng) {
  const auto protos = DrawPrototypes(2, dim, 1.6, rng);
  EnvironmentSpec env;
  env.class0_mean = protos[0];
  env.class1_mean = protos[1];
  env.group_offset.assign(dim, 0.0);
  env.group_offset[0] = 0.9;
  env.noise = 0.7;
  env.bias = 0.65;
  return env;
}

TEST(StreamingFactionTest, WarmStartAlwaysQueries) {
  StreamingFaction streaming(SmallConfig());
  Rng rng(1);
  const EnvironmentSpec env = SmallEnv(6, &rng);
  for (int i = 0; i < 30; ++i) {
    Example e = SampleFromEnvironment(env, 0, &rng);
    const Result<bool> query = streaming.ShouldQuery(e);
    ASSERT_TRUE(query.ok());
    EXPECT_TRUE(query.value()) << "warm-start arrival " << i;
    ASSERT_TRUE(streaming.ProvideLabel(e).ok());
  }
  EXPECT_EQ(streaming.queries_made(), 30u);
  EXPECT_EQ(streaming.pool_size(), 30u);
  EXPECT_TRUE(streaming.has_estimator());
}

TEST(StreamingFactionTest, QueriesAreSelectiveAfterWarmStart) {
  StreamingFactionConfig config = SmallConfig();
  config.alpha = 1.0;
  StreamingFaction streaming(config);
  Rng rng(2);
  const EnvironmentSpec env = SmallEnv(6, &rng);
  std::size_t queried = 0, total = 0;
  for (int i = 0; i < 600; ++i) {
    Example e = SampleFromEnvironment(env, 0, &rng);
    const Result<bool> query = streaming.ShouldQuery(e);
    ASSERT_TRUE(query.ok());
    if (i >= 30) {
      ++total;
      if (query.value()) ++queried;
    }
    if (query.value()) {
      ASSERT_TRUE(streaming.ProvideLabel(e).ok());
    }
  }
  // Selective: queries a strict subset, but not nothing.
  EXPECT_GT(queried, 10u);
  EXPECT_LT(queried, total * 9 / 10);
  EXPECT_EQ(streaming.samples_seen(), 600u);
}

TEST(StreamingFactionTest, LearnsTheTask) {
  StreamingFactionConfig config = SmallConfig();
  StreamingFaction streaming(config);
  Rng rng(3);
  const EnvironmentSpec env = SmallEnv(6, &rng);
  for (int i = 0; i < 800; ++i) {
    Example e = SampleFromEnvironment(env, 0, &rng);
    if (streaming.ShouldQuery(e).value_or(false)) {
      ASSERT_TRUE(streaming.ProvideLabel(e).ok());
    }
  }
  // Held-out accuracy beats chance comfortably.
  std::size_t hits = 0;
  const std::size_t eval_n = 500;
  for (std::size_t i = 0; i < eval_n; ++i) {
    const Example e = SampleFromEnvironment(env, 0, &rng);
    const Result<int> pred = streaming.Predict(e.x);
    ASSERT_TRUE(pred.ok());
    if (pred.value() == e.label) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / eval_n, 0.7);
}

TEST(StreamingFactionTest, OodArrivalsQueriedMoreOften) {
  // After adapting to one environment, arrivals from a far-shifted one
  // should be queried at a visibly higher rate (epistemic spike).
  StreamingFactionConfig config = SmallConfig();
  config.alpha = 1.0;
  config.refit_interval = 1000000;  // freeze after initial fit
  StreamingFaction streaming(config);
  Rng rng(4);
  EnvironmentSpec env = SmallEnv(6, &rng);
  for (int i = 0; i < 60; ++i) {
    Example e = SampleFromEnvironment(env, 0, &rng);
    if (streaming.ShouldQuery(e).value_or(false)) {
      ASSERT_TRUE(streaming.ProvideLabel(e).ok());
    }
  }
  ASSERT_TRUE(streaming.has_estimator());
  // Prime the normalizer range with in-distribution arrivals (decisions
  // discarded).
  std::size_t in_hits = 0, in_total = 0;
  for (int i = 0; i < 300; ++i) {
    Example e = SampleFromEnvironment(env, 0, &rng);
    ++in_total;
    if (streaming.ShouldQuery(e).value_or(false)) ++in_hits;
  }
  EnvironmentSpec shifted = env;
  shifted.shift.assign(6, 12.0);
  std::size_t ood_hits = 0, ood_total = 0;
  for (int i = 0; i < 300; ++i) {
    Example e = SampleFromEnvironment(shifted, 1, &rng);
    ++ood_total;
    if (streaming.ShouldQuery(e).value_or(false)) ++ood_hits;
  }
  const double in_rate = static_cast<double>(in_hits) / in_total;
  const double ood_rate = static_cast<double>(ood_hits) / ood_total;
  EXPECT_GT(ood_rate, in_rate * 1.5)
      << "in=" << in_rate << " ood=" << ood_rate;
}

TEST(StreamingFactionTest, RejectsWrongDimension) {
  StreamingFaction streaming(SmallConfig(6));
  Example e;
  e.x.assign(4, 0.0);
  EXPECT_FALSE(streaming.ShouldQuery(e).ok());
  EXPECT_FALSE(streaming.Predict({1.0, 2.0}).ok());
}

TEST(StreamingFactionTest, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    StreamingFactionConfig config = SmallConfig();
    config.seed = seed;
    StreamingFaction streaming(config);
    Rng rng(9);
    EnvironmentSpec env;
    Rng env_rng(10);
    env = SmallEnv(6, &env_rng);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      Example e = SampleFromEnvironment(env, 0, &rng);
      const bool q = streaming.ShouldQuery(e).value_or(false);
      decisions.push_back(q);
      if (q) streaming.ProvideLabel(e).ok();
    }
    return decisions;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

// ---------------------------------------------------------------------------
// Density forgetting (PR 8): sliding-window and decayed configurations.

TEST(StreamingFactionWindowTest, WindowedStreamEvictsAndKeepsLearning) {
  Telemetry::Enable()->Reset();
  StreamingFactionConfig config = SmallConfig();
  config.density_window = 40;
  config.density_decay = 0.98;
  StreamingFaction streaming(config);
  Rng rng(11);
  const EnvironmentSpec env = SmallEnv(6, &rng);
  for (int i = 0; i < 500; ++i) {
    Example e = SampleFromEnvironment(env, 0, &rng);
    if (streaming.ShouldQuery(e).value_or(false)) {
      ASSERT_TRUE(streaming.ProvideLabel(e).ok());
    }
  }
  // Far more than `density_window` labels were folded, so the ring must
  // have evicted through the rank-1 downdate path; the estimator survives.
  EXPECT_GT(TelemetryCounterValue("streaming.window_evictions"), 0u);
  EXPECT_EQ(TelemetryCounterValue("streaming.window_evict_failed"), 0u);
  EXPECT_TRUE(streaming.has_estimator());
  std::size_t hits = 0;
  const std::size_t eval_n = 400;
  for (std::size_t i = 0; i < eval_n; ++i) {
    const Example e = SampleFromEnvironment(env, 0, &rng);
    const Result<int> pred = streaming.Predict(e.x);
    ASSERT_TRUE(pred.ok());
    if (pred.value() == e.label) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / eval_n, 0.7);
  Telemetry::Enable()->Reset();
  Telemetry::Disable();
}

TEST(StreamingFactionWindowTest, WindowImpliesForgettingCovariance) {
  // A windowed or decayed run silently flips to forgetting-mode ridge
  // covariance (shrinkage cannot be rank-1 maintained); the stream must
  // stay functional from the very first refit.
  StreamingFactionConfig config = SmallConfig();
  config.density_window = 32;
  StreamingFaction streaming(config);
  Rng rng(12);
  const EnvironmentSpec env = SmallEnv(6, &rng);
  for (int i = 0; i < 80; ++i) {
    Example e = SampleFromEnvironment(env, 0, &rng);
    if (streaming.ShouldQuery(e).value_or(false)) {
      ASSERT_TRUE(streaming.ProvideLabel(e).ok());
    }
  }
  EXPECT_TRUE(streaming.has_estimator());
}

TEST(StreamingFactionWindowTest, WindowedDecisionsDeterministicAcrossThreads) {
  // The windowed evict -> downdate -> score path rides the dispatched
  // triangular-solve kernels; decisions must not depend on the worker
  // count (DESIGN.md §15's bitwise-determinism contract).
  auto run_once = [](int nthreads) {
    const std::size_t saved = ParallelThreadCount();
    SetParallelThreadCount(nthreads);
    StreamingFactionConfig config = SmallConfig();
    config.density_window = 36;
    config.density_decay = 0.95;
    StreamingFaction streaming(config);
    Rng rng(13);
    EnvironmentSpec env;
    Rng env_rng(14);
    env = SmallEnv(6, &env_rng);
    std::vector<bool> decisions;
    for (int i = 0; i < 300; ++i) {
      Example e = SampleFromEnvironment(env, 0, &rng);
      const bool q = streaming.ShouldQuery(e).value_or(false);
      decisions.push_back(q);
      if (q) streaming.ProvideLabel(e).ok();
    }
    SetParallelThreadCount(saved);
    return decisions;
  };
  EXPECT_EQ(run_once(1), run_once(8));
}

TEST(StreamingFactionWindowTest, WindowedDeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    StreamingFactionConfig config = SmallConfig();
    config.seed = seed;
    config.density_window = 36;
    config.density_decay = 0.9;
    StreamingFaction streaming(config);
    Rng rng(15);
    EnvironmentSpec env;
    Rng env_rng(16);
    env = SmallEnv(6, &env_rng);
    std::vector<bool> decisions;
    for (int i = 0; i < 250; ++i) {
      Example e = SampleFromEnvironment(env, 0, &rng);
      const bool q = streaming.ShouldQuery(e).value_or(false);
      decisions.push_back(q);
      if (q) streaming.ProvideLabel(e).ok();
    }
    return decisions;
  };
  EXPECT_EQ(run_once(21), run_once(21));
  EXPECT_NE(run_once(21), run_once(22));
}

TEST(StreamingFactionWindowTest, RejectsInvalidDecay) {
  StreamingFactionConfig config = SmallConfig();
  config.density_decay = 0.0;
  EXPECT_DEATH(StreamingFaction streaming(config), "CHECK failed");
}

}  // namespace
}  // namespace faction
